"""The asyncio TCP ingestion service (and its thread-hosted handle).

:class:`IngestService` is the networked face of
:class:`~repro.reporting.server.ReportServer`: one acceptor, a
per-connection :class:`~repro.reporting.net.framing.FrameReader`, and
one bounded queue + worker task per shard.  Design invariants:

* **The server object stays single-threaded.**  Every ``submit`` /
  ``process`` / ``verdict`` runs on the event loop (shard workers are
  tasks, not threads), so the in-process server needs no locks and the
  WAL write ordering of PR 4 is untouched.
* **Backpressure is deterministic.**  The handler enqueues *every*
  frame a read chunk completed before awaiting anything; with the
  single-threaded loop that makes "queue full -> DROPPED" a pure
  function of queue depth and arrival order, which is what lets tests
  assert exact drop accounting.  A dropped frame still answers its
  status byte (0x07), so the device client's retry/backoff semantics
  carry over unchanged.
* **ACCEPTED still means durable.**  Frames are answered only after the
  shard worker ran ``server.submit`` -- which journals before mutating
  -- so the status byte carries the same guarantee as the in-process
  return value.

Replication piggybacks on the same loop: when the server is durable and
``replication_port`` is given, a second listener streams HELLO +
bootstrap SNAPSHOT + every subsequent WAL append (via a
``DurabilityLog`` observer) to each follower, and reads cumulative-ack
messages back.  ``stop()`` drains shard queues *and* flushes follower
relay queues before closing, so a follower that sees EOF after a clean
leader shutdown holds every record the leader journaled.

:class:`ServiceHandle` hosts the service on a daemon-thread event loop
for the synchronous callers (fleet driver, tests): ``call(fn)`` runs a
function against the server *on the loop* and returns its result, which
is the only sanctioned cross-thread access to a served server.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import struct
import threading
import time
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.chaos.faults import fault_point
from repro.errors import FaultInjected, ReportingError, WireError
from repro.metrics import INGEST_BUCKETS, MetricsRegistry
from repro.reporting.net.framing import (
    FENCE_MAGIC,
    HEALTH_MAGIC,
    META_WAL,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RECORD,
    MSG_SNAPSHOT,
    FrameReader,
    HealthStatus,
    MessageReader,
    decode_fence,
    encode_health,
    encode_message,
    encode_redirect,
    encode_status,
    format_endpoint,
)
from repro.reporting.server import ReportServer, SubmitStatus
from repro.reporting.wire import decode_report

T = TypeVar("T")

__all__ = ["INGEST_BUCKETS", "ConnStats", "IngestService", "ServiceHandle"]


class ConnStats:
    """Per-connection tallies, kept after the connection closes."""

    __slots__ = ("conn_id", "peer", "frames", "dropped", "desync")

    def __init__(self, conn_id: int, peer: str) -> None:
        self.conn_id = conn_id
        self.peer = peer
        self.frames = 0
        self.dropped = 0
        self.desync = False

    def describe(self) -> str:
        line = f"conn {self.conn_id:03d} {self.peer}: {self.frames} frame(s)"
        if self.dropped:
            line += f", {self.dropped} dropped"
        if self.desync:
            line += ", desynchronized"
        return line


class IngestService:
    """Asyncio TCP front end for one :class:`ReportServer`."""

    def __init__(
        self,
        server: ReportServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        replication_host: Optional[str] = None,
        replication_port: Optional[int] = None,
        shard_queue_depth: int = 256,
        process_every: int = 512,
        read_chunk: int = 65536,
        heartbeat_interval: float = 0.5,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if shard_queue_depth < 1:
            raise ReportingError("shard_queue_depth must be >= 1")
        if replication_port is not None:
            if server._durability is None:
                raise ReportingError(
                    "replication requires a durable server (data_dir set): "
                    "the WAL is the replication log"
                )
            if server.shard_count >= META_WAL:
                raise ReportingError(
                    f"replication supports at most {META_WAL - 1} shards"
                )
        self.server = server
        self.host = host
        self.port = port
        self.replication_host = replication_host if replication_host is not None else host
        self.replication_port = replication_port
        self.shard_queue_depth = shard_queue_depth
        self.process_every = process_every
        self.read_chunk = read_chunk
        self.heartbeat_interval = heartbeat_interval
        self.metrics = metrics if metrics is not None else server.metrics
        self.conn_stats: List[ConnStats] = []

        self._queues: List[asyncio.Queue] = []
        self._workers: List[asyncio.Task] = []
        self._handler_tasks: "set[asyncio.Task]" = set()
        self._follower_queues: List[asyncio.Queue] = []
        self._relay_tasks: List[asyncio.Task] = []
        self._listener: Optional[asyncio.AbstractServer] = None
        self._repl_listener: Optional[asyncio.AbstractServer] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._closed = False
        self._unprocessed = 0
        self._next_conn_id = 0
        # Fencing state: once set, every write is answered NOT_LEADER
        # plus a redirect to the new leader, and never reaches the server.
        self._fenced_epoch: Optional[int] = None
        self._fenced_endpoint = ""

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ingest ``(host, port)`` (after ``start()``)."""
        if self._listener is None:
            raise ReportingError("service not started")
        return self._listener.sockets[0].getsockname()[:2]

    @property
    def replication_address(self) -> Tuple[str, int]:
        """The bound replication ``(host, port)`` (when enabled)."""
        if self._repl_listener is None:
            raise ReportingError("replication not enabled")
        return self._repl_listener.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        for _ in range(self.server.shard_count):
            queue: asyncio.Queue = asyncio.Queue(maxsize=self.shard_queue_depth)
            self._queues.append(queue)
            self._workers.append(asyncio.ensure_future(self._shard_worker(queue)))
        self._listener = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        if self.replication_port is not None:
            self._repl_listener = await asyncio.start_server(
                self._on_replica, self.replication_host, self.replication_port
            )
            self.server._durability.add_observer(self._on_wal_event)
            if self.heartbeat_interval > 0:
                self._heartbeat_task = asyncio.ensure_future(
                    self._heartbeat_loop()
                )

    async def stop(self) -> None:
        """Graceful drain: answer in-flight frames, flush followers.

        Order matters: stop accepting, let shard workers drain their
        queues, run a final ``process()``, then flush every follower
        relay queue to EOF (a follower of a *cleanly* stopped leader
        misses nothing), and only then tear down handler tasks.
        """
        if self._closed:
            return
        self._closed = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            await asyncio.gather(self._heartbeat_task, return_exceptions=True)
        for listener in (self._listener, self._repl_listener):
            if listener is not None:
                listener.close()
                await listener.wait_closed()
        for queue in self._queues:
            await queue.put(None)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self.server.process()
        for queue in self._follower_queues:
            await queue.put(None)
        if self._relay_tasks:
            await asyncio.gather(*self._relay_tasks, return_exceptions=True)
        for task in list(self._handler_tasks):
            task.cancel()
        if self._handler_tasks:
            await asyncio.gather(*self._handler_tasks, return_exceptions=True)

    def abort(self) -> None:
        """Die mid-stream: no drain, no flush, no final process.

        This is the ``net.failover`` fault and the fleet's leader-kill:
        connections break, follower streams hit EOF wherever the relay
        happened to be, and whatever only the leader knew is lost --
        exactly the failure replication must absorb.
        """
        if self._closed:
            return
        self._closed = True
        for listener in (self._listener, self._repl_listener):
            if listener is not None:
                listener.close()
        tasks = self._workers + self._relay_tasks + list(self._handler_tasks)
        if self._heartbeat_task is not None:
            tasks.append(self._heartbeat_task)
        for task in tasks:
            task.cancel()

    # -- ingest path --------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        stats = ConnStats(self._next_conn_id, peer)
        self._next_conn_id += 1
        self.conn_stats.append(stats)
        self.metrics.counter("reporting.net.connections").inc()
        drop_counter = self.metrics.counter(
            f"reporting.net.conn.{stats.conn_id:03d}.dropped"
        )
        frames = FrameReader()
        ingest_hist = self.metrics.histogram(
            "reporting.net.ingest_seconds", INGEST_BUCKETS
        )
        # The first four bytes select the protocol: DRPT frame ingestion
        # or the cluster-control plane (health probes, fence requests).
        # Buffering until the preamble is complete keeps the dispatch
        # correct under byte-at-a-time chunking.
        mode: Optional[str] = None
        control = bytearray()
        try:
            while not self._closed:
                data = await reader.read(self.read_chunk)
                if not data:
                    break
                if mode is None:
                    control.extend(data)
                    if len(control) < 4:
                        continue
                    head = bytes(control[:4])
                    mode = (
                        "control"
                        if head in (HEALTH_MAGIC, FENCE_MAGIC)
                        else "frames"
                    )
                    data = bytes(control)
                    del control[:]
                if mode == "control":
                    control.extend(data)
                    if not await self._serve_control(control, writer, stats):
                        break
                    continue
                started = time.perf_counter()
                try:
                    blobs = frames.feed(data)
                except WireError:
                    stats.desync = True
                    self.metrics.counter("reporting.net.desync").inc()
                    break
                # Enqueue every frame this chunk completed *before* the
                # first await: deterministic drops (see module docs).
                pending: List["asyncio.Future[SubmitStatus]"] = []
                for blob in blobs:
                    try:
                        fault_point("net.failover")
                    except FaultInjected:
                        self.metrics.counter("reporting.net.failover_faults").inc()
                        self.abort()
                        return
                    pending.append(self._route(blob, stats, drop_counter))
                for future in pending:
                    status = await future
                    ingest_hist.observe(time.perf_counter() - started)
                    stats.frames += 1
                    writer.write(encode_status(status))
                    if status is SubmitStatus.NOT_LEADER:
                        writer.write(
                            encode_redirect(
                                self._fenced_epoch or 0, self._fenced_endpoint
                            )
                        )
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: abort() tore the loop down while this
                # connection was mid-close -- the socket dies with it.
                pass

    async def _serve_control(
        self, buffer: bytearray, writer: asyncio.StreamWriter, stats: ConnStats
    ) -> bool:
        """Answer every complete control request in ``buffer``.

        Returns False when the stream is garbage and the connection
        should close; partial requests stay buffered for the next read.
        """
        while len(buffer) >= 4:
            head = bytes(buffer[:4])
            if head == HEALTH_MAGIC:
                del buffer[:4]
                payload = encode_health(self.health_status())
                writer.write(struct.pack(">H", len(payload)) + payload)
                await writer.drain()
                stats.frames += 1
                self.metrics.counter("reporting.net.health_probes").inc()
                continue
            if head == FENCE_MAGIC:
                if len(buffer) < 14:
                    return True
                (endpoint_len,) = struct.unpack_from(">H", buffer, 12)
                total = 14 + endpoint_len
                if len(buffer) < total:
                    return True
                try:
                    epoch, endpoint = decode_fence(bytes(buffer[4:total]))
                except WireError:
                    stats.desync = True
                    self.metrics.counter("reporting.net.desync").inc()
                    return False
                del buffer[:total]
                try:
                    accepted = self.fence(epoch, endpoint)
                except FaultInjected:
                    # The fence was lost in transit (net.stale_leader):
                    # the supervisor sees a refusal and re-fences later.
                    self.metrics.counter(
                        "reporting.net.stale_leader_faults"
                    ).inc()
                    accepted = False
                writer.write(b"\x01" if accepted else b"\x00")
                await writer.drain()
                stats.frames += 1
                continue
            stats.desync = True
            self.metrics.counter("reporting.net.desync").inc()
            return False
        return True

    # -- cluster control ----------------------------------------------------

    def fence(self, epoch: int, endpoint: str) -> bool:
        """Demote this node: reject writes, redirect clients to ``endpoint``.

        Monotonic: only an epoch strictly above everything this node has
        seen (its own and any earlier fence) applies -- a delayed or
        replayed fence from a *previous* failover is ignored, so fencing
        can never move leadership backwards.
        """
        fault_point("net.stale_leader")
        current = self.server.epoch
        if self._fenced_epoch is not None:
            current = max(current, self._fenced_epoch)
        if epoch <= current:
            return False
        self._fenced_epoch = epoch
        self._fenced_endpoint = endpoint
        self.metrics.counter("reporting.net.fenced").inc()
        return True

    @property
    def fenced(self) -> bool:
        return self._fenced_epoch is not None

    def health_status(self) -> HealthStatus:
        """This node's health, as answered to probes and heartbeats."""
        server = self.server
        fenced = self._fenced_epoch is not None
        wal_depth = 0
        if server._durability is not None:
            wal_depth = server._durability._appends_since_snapshot
        if fenced:
            endpoint = self._fenced_endpoint
        elif self._listener is not None:
            endpoint = format_endpoint(self.address)
        else:
            endpoint = ""
        return HealthStatus(
            epoch=self._fenced_epoch if fenced else server.epoch,
            role="fenced" if fenced else "leader",
            applied=int(server.metrics.counter("reporting.accepted").value),
            wal_depth=int(wal_depth),
            queue_depth=sum(queue.qsize() for queue in self._queues),
            dropped=int(self.metrics.counter("reporting.net.dropped").value),
            endpoint=endpoint,
        )

    async def _heartbeat_loop(self) -> None:
        """Periodic liveness beat relayed to every follower."""
        try:
            while not self._closed:
                await asyncio.sleep(self.heartbeat_interval)
                if not self._follower_queues:
                    continue
                message = encode_message(
                    MSG_HEARTBEAT, encode_health(self.health_status())
                )
                for queue in self._follower_queues:
                    queue.put_nowait(message)
        except asyncio.CancelledError:
            pass

    def _route(
        self, blob: bytes, stats: ConnStats, drop_counter
    ) -> "asyncio.Future[SubmitStatus]":
        """Queue one frame for its owning shard; never awaits."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[SubmitStatus]" = loop.create_future()
        if self._fenced_epoch is not None:
            # A fenced node accepts nothing: the frame never reaches the
            # server, so its counters (and WAL) stay flat post-fence.
            self.metrics.counter("reporting.net.not_leader").inc()
            future.set_result(SubmitStatus.NOT_LEADER)
            return future
        try:
            signed = decode_report(blob)
        except WireError:
            # Malformed frames never reach a shard queue; submit inline
            # so the MALFORMED counters stay identical to in-process.
            future.set_result(self.server.submit(blob))
            return future
        shard = self.server.shard_for(signed.report.device_id)
        try:
            self._queues[shard].put_nowait((signed, future))
        except asyncio.QueueFull:
            stats.dropped += 1
            drop_counter.inc()
            self.metrics.counter("reporting.net.dropped").inc()
            # Mirror the in-process books: a frame that reached us but
            # could not be queued still counts as received + dropped.
            self.server.metrics.counter("reporting.received").inc()
            self.server.metrics.counter("reporting.dropped_backpressure").inc()
            future.set_result(SubmitStatus.DROPPED)
        return future

    async def _shard_worker(self, queue: asyncio.Queue) -> None:
        while True:
            item = await queue.get()
            if item is None:
                queue.task_done()
                return
            signed, future = item
            status = self.server.submit(signed)
            if not future.done():
                future.set_result(status)
            queue.task_done()
            self._unprocessed += 1
            if self._unprocessed >= self.process_every:
                self._unprocessed = 0
                self.server.process()

    # -- replication path ---------------------------------------------------

    async def _on_replica(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        from repro.reporting.net.replication import snapshot_file_bytes

        # Bootstrap synchronously (no await between snapshot render and
        # follower registration): every WAL append after this instant
        # lands in the queue, so the follower misses nothing.
        queue: asyncio.Queue = asyncio.Queue()
        queue.put_nowait(
            encode_message(MSG_HELLO, bytes((self.server.shard_count,)))
        )
        queue.put_nowait(
            encode_message(MSG_SNAPSHOT, snapshot_file_bytes(self.server))
        )
        # An immediate beat so the follower learns the leader's epoch
        # without waiting out the first heartbeat interval.
        queue.put_nowait(
            encode_message(MSG_HEARTBEAT, encode_health(self.health_status()))
        )
        self._follower_queues.append(queue)
        self.metrics.counter("reporting.net.replicas").inc()
        relay = asyncio.ensure_future(self._relay(queue, writer))
        self._relay_tasks.append(relay)
        acks = MessageReader()
        try:
            while not self._closed:
                data = await reader.read(self.read_chunk)
                if not data:
                    break
                for kind, payload in acks.feed(data):
                    if kind == b"A" and len(payload) == 8:
                        applied = int.from_bytes(payload, "big")
                        self.metrics.gauge("reporting.net.replica_acked").set(applied)
        except (ConnectionError, asyncio.CancelledError, WireError):
            pass
        finally:
            if queue in self._follower_queues:
                self._follower_queues.remove(queue)
            if not relay.done():
                await queue.put(None)
                await asyncio.gather(relay, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _relay(self, queue: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                message = await queue.get()
                if message is None:
                    return
                writer.write(message)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def _on_wal_event(self, event: str, index: int, payload: bytes) -> None:
        """DurabilityLog observer: relay appends/compactions verbatim."""
        if not self._follower_queues:
            return
        if event == "record":
            wal_byte = index if index >= 0 else META_WAL
            message = encode_message(MSG_RECORD, bytes((wal_byte,)) + payload)
        elif event == "snapshot":
            message = encode_message(MSG_SNAPSHOT, payload)
        else:  # pragma: no cover - future event kinds are not replicated
            return
        for queue in self._follower_queues:
            queue.put_nowait(message)


class ServiceHandle:
    """An :class:`IngestService` on its own daemon-thread event loop.

    The fleet driver and the tests are synchronous; this wrapper owns
    the loop thread and funnels all server access through ``call()``.
    """

    def __init__(self) -> None:
        self.service: Optional[IngestService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self._stopped = False
        # Serializes stop()/kill() against each other (idempotence) --
        # a supervisor thread and the owner may both try to tear down.
        self._lifecycle = threading.Lock()

    # Start is a classmethod so the handle is never observable half-built.
    @classmethod
    def start(cls, server: ReportServer, **kwargs) -> "ServiceHandle":
        handle = cls()
        ready = threading.Event()

        def boot() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            handle._loop = loop
            try:
                handle.service = IngestService(server, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                handle._error = exc
                ready.set()
                loop.close()
                return

            async def _start() -> None:
                try:
                    await handle.service.start()
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    handle._error = exc
                finally:
                    ready.set()

            loop.create_task(_start())
            try:
                loop.run_forever()
            finally:
                tasks = asyncio.all_tasks(loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    loop.run_until_complete(
                        asyncio.gather(*tasks, return_exceptions=True)
                    )
                loop.close()

        handle._thread = threading.Thread(
            target=boot, name="repro-ingest", daemon=True
        )
        handle._thread.start()
        if not ready.wait(30):
            raise ReportingError("ingest service failed to start in time")
        if handle._error is not None:
            handle._thread_join()
            raise ReportingError(
                f"ingest service failed to start: {handle._error}"
            ) from handle._error
        return handle

    @property
    def address(self) -> Tuple[str, int]:
        return self.service.address

    @property
    def replication_address(self) -> Tuple[str, int]:
        return self.service.replication_address

    def call(self, fn: Callable[[ReportServer], T], timeout: float = 30.0) -> T:
        """Run ``fn(server)`` on the service loop; the only safe way to
        touch a served server from another thread.

        Safe against a concurrent ``stop()``/``kill()``: a call caught
        mid-flight by a teardown raises :class:`ReportingError` instead
        of hanging on a dead loop or surfacing a cancellation.
        """
        loop = self._loop
        if loop is None or self._stopped:
            raise ReportingError("service handle is not running")

        async def _invoke() -> T:
            return fn(self.service.server)

        try:
            future = asyncio.run_coroutine_threadsafe(_invoke(), loop)
        except RuntimeError:
            # The loop closed between the check and the submit.
            raise ReportingError("service handle is not running") from None
        try:
            return future.result(timeout)
        except concurrent.futures.CancelledError:
            raise ReportingError(
                "service stopped while the call was in flight"
            ) from None

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, flush followers, join the thread.

        Idempotent: later ``stop()``/``kill()`` calls (from any thread)
        are no-ops once a teardown has claimed the handle.
        """
        with self._lifecycle:
            if self._stopped or self._loop is None:
                return
            self._stopped = True
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.service.stop(), self._loop
            )
        except RuntimeError:
            self._thread_join(timeout)
            return
        try:
            future.result(timeout)
        finally:
            self._request_loop_stop()
            self._thread_join(timeout)

    def kill(self) -> None:
        """Abrupt death (``abort()``): the fleet's leader-kill fault.

        Idempotent and callable from a supervisor thread while another
        thread sits in ``call()`` -- the in-flight call is cancelled
        (surfacing as :class:`ReportingError`), never left hanging.
        """
        with self._lifecycle:
            if self._stopped or self._loop is None:
                return
            self._stopped = True
        try:
            self._loop.call_soon_threadsafe(self.service.abort)
        except RuntimeError:
            pass
        self._request_loop_stop()
        self._thread_join()

    def _request_loop_stop(self) -> None:
        try:
            self._loop.call_soon_threadsafe(self._loop.stop)
        except RuntimeError:
            pass  # already stopped and closed

    def _thread_join(self, timeout: float = 10.0) -> None:
        if self._thread is not None:
            self._thread.join(timeout)
