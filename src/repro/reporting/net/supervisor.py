"""Cluster supervision: leader health, automatic promotion, fencing.

The PR-7 cluster could fail over, but only by hand (``repro replica
--promote``), and nothing stopped a *stale* leader -- partitioned away
rather than dead -- from accepting writes after the promotion
(split-brain, which breaks the exactly-once verdict math).  This module
closes both gaps with one deliberately small state machine:

* :func:`probe_health` asks a node for its :class:`HealthStatus` over
  the ingest port's control plane (``HLTH`` preamble).  A probe that
  cannot connect, times out, or is chaos-eaten (``net.heartbeat_loss``)
  is a **miss**.
* :class:`ClusterSupervisor` ticks on a deterministic timer.
  ``miss_threshold`` consecutive misses declare the leader dead; the
  supervisor promotes the **most-caught-up follower** (highest durable
  ``applied`` -- catch-up is measured in fsynced records, never in
  heartbeats), which bumps the **epoch** through the meta WAL, then
  **fences** the old endpoint with :func:`send_fence`.
* Fencing is what makes a surviving stale leader harmless: a fenced
  node answers every write ``NOT_LEADER(epoch, new_endpoint)`` without
  touching its server, so its books stay flat and clients re-route.
  A fence can itself be lost (``net.stale_leader``); the supervisor
  keeps re-fencing on later ticks until the old node acknowledges or
  stays unreachable past its retry budget.

**Determinism.**  ``tick()`` does one bounded step and is driven either
by the caller (tests, fleet: virtual time, zero sleeps) or by ``run()``
on a daemon thread with seeded jitter.  The supervisor itself is
allowed to crash (``net.supervisor_crash`` raises inside ``tick``): a
crash resets the miss counter -- a restarted supervisor has no memory
of in-flight suspicion -- which is exactly the conservatism that keeps
a flapping supervisor from promoting on stale evidence.

**Epoch invariants** (checked by the chaos matrix):

1. Epochs only grow, and every promotion grows one: the promoted
   server's epoch strictly exceeds anything the old leader served.
2. A fence applies only with an epoch above the target's own -- a
   delayed fence from an earlier failover can never demote a newer
   leader.
3. Post-fence, the old leader accepts zero writes; every client that
   reaches it is redirected to the epoch's endpoint.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.chaos.faults import fault_point
from repro.errors import FaultInjected, ReportingError, TransportError
from repro.reporting.net.framing import (
    FENCE_MAGIC,
    HEALTH_MAGIC,
    HealthStatus,
    decode_health,
    encode_fence,
    format_endpoint,
)
from repro.reporting.net.replication import ReplicaFollower
from repro.reporting.net.service import ServiceHandle
from repro.reporting.server import ReportServer

__all__ = [
    "ClusterSupervisor",
    "FailoverEvent",
    "probe_health",
    "send_fence",
]


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        data = sock.recv(count - len(chunks))
        if not data:
            raise TransportError("peer closed mid-response")
        chunks.extend(data)
    return bytes(chunks)


def probe_health(
    endpoint: Tuple[str, int], timeout: float = 2.0
) -> HealthStatus:
    """One health probe over the ingest port's control plane.

    Raises ``OSError``/:class:`TransportError` when the node is down and
    :class:`~repro.errors.FaultInjected` when ``net.heartbeat_loss`` is
    armed -- callers treat all three as a missed heartbeat.
    """
    fault_point("net.heartbeat_loss")
    with socket.create_connection(endpoint, timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(HEALTH_MAGIC)
        (length,) = struct.unpack(">H", _recv_exact(sock, 2))
        payload = _recv_exact(sock, length)
    return decode_health(payload)


def send_fence(
    endpoint: Tuple[str, int],
    epoch: int,
    new_endpoint: str,
    timeout: float = 2.0,
) -> bool:
    """Ask the node at ``endpoint`` to fence itself behind ``epoch``.

    Returns True when the node applied the fence, False when it refused
    (stale epoch, or the fence was chaos-eaten on the node).  Raises
    ``OSError`` when the node is unreachable -- a dead node needs no
    fence.
    """
    with socket.create_connection(endpoint, timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(FENCE_MAGIC + encode_fence(epoch, new_endpoint))
        answer = _recv_exact(sock, 1)
    return answer == b"\x01"


@dataclass(frozen=True)
class FailoverEvent:
    """One completed automatic failover (the MTTR bench's raw data)."""

    epoch: int
    endpoint: Tuple[str, int]
    #: Seconds from the first missed heartbeat to the dead declaration.
    detection_seconds: float
    #: Seconds from the dead declaration to the promoted node serving.
    promotion_seconds: float
    #: The promoted follower's durable applied count at promotion.
    follower_applied: int


class ClusterSupervisor:
    """Watches one leader; promotes the most-caught-up follower on death.

    ``tick()`` is the whole protocol -- drive it from a test loop for
    virtual time, or ``start()`` a daemon thread that ticks every
    ``interval`` seconds (seeded jitter, so fleets of supervisors do
    not probe in lockstep).
    """

    def __init__(
        self,
        leader_endpoint: Tuple[str, int],
        followers: Sequence[ReplicaFollower],
        *,
        server_kwargs: Optional[dict] = None,
        service_kwargs: Optional[dict] = None,
        miss_threshold: int = 3,
        interval: float = 0.5,
        probe_timeout: float = 2.0,
        promote_host: str = "127.0.0.1",
        promote_port: int = 0,
        fence_attempts: int = 25,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        probe: Optional[Callable[[], HealthStatus]] = None,
    ) -> None:
        if miss_threshold < 1:
            raise ReportingError("miss_threshold must be >= 1")
        if not followers:
            raise ReportingError("a supervisor needs at least one follower")
        self.leader_endpoint = (leader_endpoint[0], int(leader_endpoint[1]))
        self.followers: List[ReplicaFollower] = list(followers)
        self.server_kwargs = dict(server_kwargs or {})
        self.service_kwargs = dict(service_kwargs or {})
        self.miss_threshold = miss_threshold
        self.interval = interval
        self.probe_timeout = probe_timeout
        self.promote_host = promote_host
        self.promote_port = promote_port
        self.fence_attempts = fence_attempts
        self._clock = clock
        self._probe = probe or (
            lambda: probe_health(self.leader_endpoint, timeout=probe_timeout)
        )
        self._rng = random.Random(f"supervisor:{seed}")

        # Observability -- everything the chaos matrix asserts on.
        self.misses = 0
        self.heartbeats_seen = 0
        self.crashes = 0
        self.failovers = 0
        self.fences_sent = 0
        self.fences_acked = 0
        self.leader_epoch = 0
        self.last_health: Optional[HealthStatus] = None
        self.event: Optional[FailoverEvent] = None
        self.error: Optional[BaseException] = None

        self.promoted_server: Optional[ReportServer] = None
        self.promoted_handle: Optional[ServiceHandle] = None
        self._first_miss_at: Optional[float] = None
        self._fenced = False
        self._fence_tries = 0
        self._stop_flag = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- routing ------------------------------------------------------------

    def endpoint(self) -> Tuple[str, int]:
        """Where clients should write *now* (re-points after failover)."""
        if self.promoted_handle is not None:
            return self.promoted_handle.address
        return self.leader_endpoint

    @property
    def fenced(self) -> bool:
        """True once the demoted leader acknowledged the fence."""
        return self._fenced

    # -- the protocol -------------------------------------------------------

    def tick(self) -> bool:
        """One supervision step; True when this tick performed a failover.

        Deterministic given the probe outcomes: no sleeps, no wall-clock
        decisions (the clock only timestamps the event record).
        """
        try:
            fault_point("net.supervisor_crash")
        except FaultInjected:
            # The supervisor process died and restarted: it remembers
            # its cluster config (construction args) but not in-flight
            # suspicion -- conservative by design.
            self.crashes += 1
            self.misses = 0
            self._first_miss_at = None
            return False
        if self.promoted_handle is not None:
            self._refence_stale_leader()
            return False
        try:
            health = self._probe()
        except (OSError, TransportError, FaultInjected, ReportingError):
            self.misses += 1
            if self._first_miss_at is None:
                self._first_miss_at = self._clock()
            if self.misses >= self.miss_threshold:
                self.failover()
                return True
            return False
        self.misses = 0
        self._first_miss_at = None
        self.heartbeats_seen += 1
        self.last_health = health
        if health.epoch > self.leader_epoch:
            self.leader_epoch = health.epoch
        return False

    def failover(self) -> FailoverEvent:
        """Promote the most-caught-up follower and fence the old leader."""
        declared_at = self._clock()
        first_miss = self._first_miss_at
        detection = declared_at - first_miss if first_miss is not None else 0.0
        follower = max(self.followers, key=lambda f: f.applied)
        for other in self.followers:
            if other is not follower:
                other.stop()
        kwargs = {
            key: value
            for key, value in self.server_kwargs.items()
            if value is not None
        }
        if follower.shard_count is not None:
            kwargs.setdefault("shards", follower.shard_count)
        server = follower.promote(**kwargs)  # bumps the epoch durably
        server.process()
        handle = ServiceHandle.start(
            server,
            host=self.promote_host,
            port=self.promote_port,
            **self.service_kwargs,
        )
        self.promoted_server = server
        self.promoted_handle = handle
        self.failovers += 1
        self.leader_epoch = server.epoch
        self.event = FailoverEvent(
            epoch=server.epoch,
            endpoint=handle.address,
            detection_seconds=detection,
            promotion_seconds=self._clock() - declared_at,
            follower_applied=follower.applied,
        )
        self._fenced = False
        self._fence_tries = 0
        self._refence_stale_leader()
        return self.event

    def _refence_stale_leader(self) -> None:
        """Fence (and keep fencing) the demoted endpoint.

        A dead leader refuses the connection -- nothing to fence.  A
        *live* one (partition, not death) must acknowledge the fence;
        until it does, every tick retries, bounded by
        ``fence_attempts`` so a permanently dead endpoint does not buy
        a connect attempt per tick forever.
        """
        if self._fenced or self._fence_tries >= self.fence_attempts:
            return
        self._fence_tries += 1
        self.fences_sent += 1
        new_endpoint = format_endpoint(self.promoted_handle.address)
        try:
            acked = send_fence(
                self.leader_endpoint,
                self.promoted_server.epoch,
                new_endpoint,
                timeout=self.probe_timeout,
            )
        except (OSError, TransportError):
            return  # unreachable: dead, or will be re-tried next tick
        if acked:
            self.fences_acked += 1
            self._fenced = True

    # -- threaded driver ----------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        """Tick on a daemon thread every ``interval`` seconds."""
        if self._thread is not None:
            raise ReportingError("supervisor already started")
        self._thread = threading.Thread(
            target=self.run, name="repro-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def run(self) -> None:
        """Blocking tick loop (the ``repro supervise`` process body)."""
        while not self._stop_flag.is_set():
            try:
                self.tick()
            except BaseException as exc:  # noqa: BLE001 - surfaced to owner
                self.error = exc
                return
            # Seeded jitter (+/-10%) so cohorts of supervisors spread out.
            delay = self.interval * (0.9 + 0.2 * self._rng.random())
            self._stop_flag.wait(delay)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop ticking; the promoted handle (if any) stays up."""
        self._stop_flag.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop ticking and gracefully stop anything we promoted."""
        self.stop(timeout)
        if self.promoted_handle is not None:
            self.promoted_handle.stop(timeout)
