"""Incremental codecs for the TCP ingestion and replication streams.

TCP is a byte stream: one ``read()`` may return half a DRPT frame, three
frames and a torn fourth, or a single byte.  The ingestion acceptor
therefore never calls :func:`repro.reporting.wire.decode_report` on raw
socket data -- it feeds everything through a :class:`FrameReader`,
which exploits the DRPT framing's self-delimiting layout::

    DRPT | >I body_len | body | >H key_len | key | >H sig_len | sig

to slice complete frames out of an internal buffer and keep partial
tails pending.  The reader is *tolerant* of arbitrary chunking (the
property tests feed it byte-at-a-time and split-at-every-offset) but
*intolerant* of desynchronization: a buffer that does not start with
the magic, or a declared length past ``max_frame``, raises
:class:`~repro.errors.WireError` -- the connection is garbage and the
acceptor closes it rather than scanning for a resync point.

Two smaller codecs share the module:

* **Status bytes.**  The service answers one byte per frame so the
  device-side :class:`~repro.reporting.client.ReportClient` semantics
  (retry on transport error, interpret the server's verdict) carry over
  a socket unchanged.  The mapping is explicit and frozen -- wire
  compatibility, not enum ordering.
* **Replication messages.**  Leader -> follower WAL shipping uses a
  trivial ``type | >I len | payload`` framing (:func:`encode_message` /
  :class:`MessageReader`): HELLO (shard count), SNAPSHOT (a full
  snapshot file image), RECORD (one crc32-framed WAL record tagged with
  its shard), and ACK (follower's cumulative applied count, sent after
  fsync).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import WireError
from repro.reporting.server import SubmitStatus
from repro.reporting.wire import WIRE_MAGIC

#: magic(4) + >I body_len
_PREFIX_LEN = 8

#: Upper bound on one frame; a 512-bit attestation key plus a report
#: body is well under 1 KiB, so anything near this is garbage lengths.
DEFAULT_MAX_FRAME = 1 << 20


class FrameReader:
    """Incremental DRPT frame slicer over an arbitrary byte stream.

    ``feed(data)`` buffers ``data`` and returns every *complete* frame
    (as raw bytes, ready for ``decode_report`` or ``server.submit``);
    a torn final frame stays pending until the rest arrives.
    """

    __slots__ = ("_buffer", "max_frame", "frames")

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self._buffer = bytearray()
        self.max_frame = max_frame
        self.frames = 0

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet sliced into a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Buffer ``data``; return the complete frames it completes."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        while True:
            total = self._frame_length()
            if total is None or len(self._buffer) < total:
                return frames
            frames.append(bytes(self._buffer[:total]))
            del self._buffer[:total]
            self.frames += 1

    def _frame_length(self) -> "int | None":
        """Total length of the buffered frame, or None while torn.

        Raises :class:`WireError` on a magic mismatch or an absurd
        declared length -- the stream is desynchronized, not torn.
        """
        buf = self._buffer
        if len(buf) < 4:
            if buf and not WIRE_MAGIC.startswith(bytes(buf)):
                raise WireError("desynchronized report stream (bad magic)")
            return None
        if bytes(buf[:4]) != WIRE_MAGIC:
            raise WireError("desynchronized report stream (bad magic)")
        if len(buf) < _PREFIX_LEN:
            return None
        (body_len,) = struct.unpack_from(">I", buf, 4)
        if _PREFIX_LEN + body_len > self.max_frame:
            raise WireError(
                f"report frame body of {body_len} bytes exceeds the "
                f"{self.max_frame}-byte frame cap"
            )
        offset = _PREFIX_LEN + body_len
        if len(buf) < offset + 2:
            return None
        (key_len,) = struct.unpack_from(">H", buf, offset)
        offset += 2 + key_len
        if len(buf) < offset + 2:
            return None
        (sig_len,) = struct.unpack_from(">H", buf, offset)
        total = offset + 2 + sig_len
        if total > self.max_frame:
            raise WireError(
                f"report frame of {total} bytes exceeds the "
                f"{self.max_frame}-byte frame cap"
            )
        return total


# ---------------------------------------------------------------------------
# Per-frame status bytes
# ---------------------------------------------------------------------------

#: Frozen wire values -- never renumber (clients in the field decode
#: these), and never derive them from enum iteration order.
_STATUS_TO_BYTE = {
    SubmitStatus.ACCEPTED: 0x01,
    SubmitStatus.DUPLICATE: 0x02,
    SubmitStatus.REPLAYED: 0x03,
    SubmitStatus.BAD_SIGNATURE: 0x04,
    SubmitStatus.MALFORMED: 0x05,
    SubmitStatus.UNKNOWN_APP: 0x06,
    SubmitStatus.DROPPED: 0x07,
    SubmitStatus.NOT_LEADER: 0x08,
}
_BYTE_TO_STATUS = {value: status for status, value in _STATUS_TO_BYTE.items()}


def encode_status(status: SubmitStatus) -> bytes:
    """One status byte per ingested frame (server -> client)."""
    try:
        return bytes((_STATUS_TO_BYTE[status],))
    except KeyError:
        raise WireError(f"unmapped submit status {status!r}") from None


def decode_status(value: int) -> SubmitStatus:
    """Inverse of :func:`encode_status`; raises :class:`WireError`."""
    try:
        return _BYTE_TO_STATUS[value]
    except KeyError:
        raise WireError(f"unknown status byte 0x{value:02x}") from None


# ---------------------------------------------------------------------------
# Replication messages (leader <-> follower)
# ---------------------------------------------------------------------------

#: Leader -> follower: ``>B shard_count``.  Always the first message.
MSG_HELLO = b"H"
#: Leader -> follower: a full snapshot file image (magic+payload+crc).
#: Sent once at connect (bootstrap) and after every leader compaction.
MSG_SNAPSHOT = b"S"
#: Leader -> follower: ``>B wal_index | crc32-framed record bytes``.
#: ``wal_index`` 0xFF addresses the meta WAL, else the shard WAL.
MSG_RECORD = b"R"
#: Follower -> leader: ``>Q cumulative_applied`` after a local fsync.
MSG_ACK = b"A"
#: Leader -> follower: an encoded :class:`HealthStatus` (liveness beat
#: carrying the leader's epoch).  Does not advance ``applied``.
MSG_HEARTBEAT = b"T"

#: ``wal_index`` byte addressing the meta WAL in a RECORD message.
META_WAL = 0xFF

_MSG_KINDS = (MSG_HELLO, MSG_SNAPSHOT, MSG_RECORD, MSG_ACK, MSG_HEARTBEAT)

#: Snapshot images dominate; records are small.  Same garbage-length
#: guard rationale as the frame cap, just sized for snapshots.
DEFAULT_MAX_MESSAGE = 1 << 28


def encode_message(kind: bytes, payload: bytes) -> bytes:
    """``type | >I len | payload`` replication framing."""
    if kind not in _MSG_KINDS:
        raise WireError(f"unknown replication message kind {kind!r}")
    return kind + struct.pack(">I", len(payload)) + payload


class MessageReader:
    """Incremental replication-message slicer (same contract as
    :class:`FrameReader`, for the leader<->follower stream)."""

    __slots__ = ("_buffer", "max_message")

    def __init__(self, max_message: int = DEFAULT_MAX_MESSAGE) -> None:
        self._buffer = bytearray()
        self.max_message = max_message

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Tuple[bytes, bytes]]:
        """Buffer ``data``; return complete ``(kind, payload)`` pairs."""
        self._buffer.extend(data)
        messages: List[Tuple[bytes, bytes]] = []
        while len(self._buffer) >= 5:
            kind = bytes(self._buffer[:1])
            if kind not in _MSG_KINDS:
                raise WireError(
                    f"desynchronized replication stream (kind {kind!r})"
                )
            (length,) = struct.unpack_from(">I", self._buffer, 1)
            if length > self.max_message:
                raise WireError(
                    f"replication message of {length} bytes exceeds the "
                    f"{self.max_message}-byte cap"
                )
            if len(self._buffer) < 5 + length:
                break
            messages.append((kind, bytes(self._buffer[5 : 5 + length])))
            del self._buffer[: 5 + length]
        return messages


# ---------------------------------------------------------------------------
# Cluster-control wire: health probes, fencing, NOT_LEADER redirects
# ---------------------------------------------------------------------------
#
# The ingest port is dual-protocol: the first four bytes of a connection
# select DRPT frame ingestion (``WIRE_MAGIC``), a health probe
# (``HEALTH_MAGIC``), or a fence request (``FENCE_MAGIC``).  Keeping the
# control plane on the data port means the supervisor observes exactly
# the path clients use -- a leader that answers probes but not writes is
# not a failure mode this design can misreport.

#: Connection preamble selecting the health-probe protocol.  The probe
#: is the 4 magic bytes; the response is ``>H len | health payload``.
#: The connection stays open for repeated probes (one per magic).
HEALTH_MAGIC = b"HLTH"

#: Connection preamble selecting the fence protocol.  The request is
#: ``FNCE | >Q epoch | >H len | new_endpoint utf-8``; the response is a
#: single byte: 0x01 fence applied, 0x00 ignored (stale epoch).
FENCE_MAGIC = b"FNCE"

#: Role bytes in a health payload -- frozen wire values, like statuses.
_ROLE_TO_BYTE = {"leader": 1, "fenced": 2, "follower": 3}
_BYTE_TO_ROLE = {value: role for role, value in _ROLE_TO_BYTE.items()}


@dataclass(frozen=True)
class HealthStatus:
    """One node's self-reported health, as carried by probes/heartbeats.

    ``epoch`` is the leadership generation the node believes current;
    ``applied`` counts durable appends (followers: replicated records),
    ``wal_depth`` appends since the last snapshot, ``queue_depth`` and
    ``dropped`` expose ingest backpressure.  ``endpoint`` is where
    clients should write -- for a fenced node that is the *new* leader.
    """

    epoch: int
    role: str
    applied: int = 0
    wal_depth: int = 0
    queue_depth: int = 0
    dropped: int = 0
    endpoint: str = ""


def encode_health(health: HealthStatus) -> bytes:
    """``>Q epoch | B role | >Q applied | >I wal | >I queue | >Q dropped
    | >H len | endpoint`` (heartbeat and probe-response payload)."""
    try:
        role = _ROLE_TO_BYTE[health.role]
    except KeyError:
        raise WireError(f"unmapped health role {health.role!r}") from None
    endpoint = health.endpoint.encode("utf-8")
    return b"".join(
        (
            struct.pack(
                ">QBQIIQ",
                health.epoch & 0xFFFFFFFFFFFFFFFF,
                role,
                health.applied & 0xFFFFFFFFFFFFFFFF,
                health.wal_depth & 0xFFFFFFFF,
                health.queue_depth & 0xFFFFFFFF,
                health.dropped & 0xFFFFFFFFFFFFFFFF,
            ),
            struct.pack(">H", len(endpoint)),
            endpoint,
        )
    )


_HEALTH_FIXED = struct.calcsize(">QBQIIQ")


def decode_health(payload: bytes) -> HealthStatus:
    """Inverse of :func:`encode_health`; raises :class:`WireError`."""
    try:
        epoch, role_byte, applied, wal_depth, queue_depth, dropped = (
            struct.unpack_from(">QBQIIQ", payload, 0)
        )
        (endpoint_len,) = struct.unpack_from(">H", payload, _HEALTH_FIXED)
    except struct.error:
        raise WireError("truncated health payload") from None
    offset = _HEALTH_FIXED + 2
    endpoint = payload[offset : offset + endpoint_len]
    if len(endpoint) != endpoint_len or offset + endpoint_len != len(payload):
        raise WireError("malformed health payload")
    role = _BYTE_TO_ROLE.get(role_byte)
    if role is None:
        raise WireError(f"unknown health role byte 0x{role_byte:02x}")
    return HealthStatus(
        epoch=epoch,
        role=role,
        applied=applied,
        wal_depth=wal_depth,
        queue_depth=queue_depth,
        dropped=dropped,
        endpoint=endpoint.decode("utf-8"),
    )


def encode_redirect(epoch: int, endpoint: str) -> bytes:
    """Payload a fenced node writes after a NOT_LEADER status byte:
    ``>Q epoch | >H len | endpoint utf-8`` (the new leader)."""
    raw = endpoint.encode("utf-8")
    return struct.pack(">QH", epoch & 0xFFFFFFFFFFFFFFFF, len(raw)) + raw


def decode_redirect(payload: bytes) -> Tuple[int, str]:
    """Inverse of :func:`encode_redirect`; raises :class:`WireError`."""
    try:
        epoch, endpoint_len = struct.unpack_from(">QH", payload, 0)
    except struct.error:
        raise WireError("truncated NOT_LEADER redirect") from None
    raw = payload[10 : 10 + endpoint_len]
    if len(raw) != endpoint_len or 10 + endpoint_len != len(payload):
        raise WireError("malformed NOT_LEADER redirect")
    return epoch, raw.decode("utf-8")


#: A fence request body reuses the redirect layout (epoch + endpoint).
encode_fence = encode_redirect
decode_fence = decode_redirect


def parse_endpoint(text: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (redirect / config strings)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise WireError(f"malformed endpoint {text!r} (want host:port)")
    try:
        return host, int(port)
    except ValueError:
        raise WireError(f"malformed endpoint port in {text!r}") from None


def format_endpoint(endpoint: Tuple[str, int]) -> str:
    """Inverse of :func:`parse_endpoint`."""
    return f"{endpoint[0]}:{endpoint[1]}"
