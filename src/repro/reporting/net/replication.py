"""Leader -> follower replication by WAL shipping.

The per-shard crc32-framed records :mod:`repro.reporting.durability`
journals *are* the replication log -- no second format, no translation.
The leader (inside :class:`~repro.reporting.net.service.IngestService`)
observes every successful WAL append and every successful compaction
and relays them verbatim; this module is the other end of that stream:

* :func:`snapshot_file_bytes` renders a server's durable state exactly
  as ``DurabilityLog.compact`` would write it to disk (magic + payload
  + crc32), so the bootstrap image a follower receives at connect time
  is byte-compatible with the snapshot loader it will recover from.
* :class:`ReplicaFollower` maintains a warm standby data directory over
  a plain blocking socket (its own thread; the follower is a client,
  not a service): HELLO resets the directory, SNAPSHOT atomically
  replaces ``snapshot.bin`` and truncates the WALs (mirroring the
  leader's compaction), RECORD appends verbatim to the same-named WAL
  file, and an ACK with the cumulative applied count is sent only
  *after* the touched files are fsynced -- the leader's replica-lag
  gauge measures durable progress, not buffered bytes.

**Failover is snapshot+replay.**  ``promote()`` closes the follower's
files and hands the directory to ``ReportServer.recover`` -- the exact
crash-recovery path PR 4 proved exactly-once, which is why a promoted
follower cannot double-count a device: every shipped record carries the
original ``(device, nonce)`` and replay dedups on it.

**What failover can lose.**  Shipping is asynchronous: records the dead
leader journaled but never relayed (or relayed but never delivered) are
gone, exactly like any async-replicated store.  They were *acked* to
their clients, so those devices do not resend -- the convergence claim
the bench asserts is therefore about the *verdict*, which tolerates a
bounded tail loss because takedown evidence keeps arriving after the
promotion.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
import time
import zlib
from typing import Dict, Optional, Tuple

from repro.errors import ReportingError, ReproError
from repro.reporting.durability import SNAPSHOT_MAGIC, SNAPSHOT_NAME, encode_snapshot
from repro.reporting.net.framing import (
    META_WAL,
    MSG_ACK,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RECORD,
    MSG_SNAPSHOT,
    HealthStatus,
    MessageReader,
    decode_health,
    encode_message,
)
from repro.reporting.server import ReportServer


def snapshot_file_bytes(server: ReportServer) -> bytes:
    """The server's durable state as a full snapshot file image."""
    payload = encode_snapshot(server._snapshot_state())
    return SNAPSHOT_MAGIC + payload + struct.pack(">I", zlib.crc32(payload))


class ReplicaFollower:
    """Warm-standby follower of one leader's WAL stream.

    Runs on its own thread (``start()``) or in the caller's
    (``run()``, which blocks until the leader hangs up or ``stop()``).
    ``promote()`` turns the followed directory into a live
    :class:`ReportServer` via the crash-recovery path.
    """

    def __init__(
        self,
        data_dir: str,
        leader: Tuple[str, int],
        *,
        expect_shards: Optional[int] = None,
        connect_timeout: float = 10.0,
        poll_interval: float = 0.2,
    ) -> None:
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.leader = (leader[0], int(leader[1]))
        self.expect_shards = expect_shards
        self.connect_timeout = connect_timeout
        self.poll_interval = poll_interval

        #: Cumulative applied updates (snapshots + records); what ACKs carry.
        self.applied = 0
        #: Snapshot images applied (1 bootstrap + one per leader compaction).
        self.snapshots = 0
        #: Heartbeats received; ``leader_epoch`` is the last one's epoch.
        self.heartbeats = 0
        self.leader_epoch = 0
        self.shard_count: Optional[int] = None
        self.error: Optional[BaseException] = None

        # ``applied``/``error`` transitions signal this condition so
        # ``wait_applied`` wakes on progress instead of busy-polling.
        self._progress = threading.Condition()
        self._stop_flag = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._files: Dict[int, "io.FileIO"] = {}  # noqa: F821 - doc only
        self._sock: Optional[socket.socket] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ReplicaFollower":
        """Follow on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise ReportingError("follower already started")
        self._thread = threading.Thread(
            target=self.run, name="repro-replica", daemon=True
        )
        self._thread.start()
        return self

    def run(self) -> None:
        """Follow the leader until EOF or ``stop()`` (blocking)."""
        try:
            self._follow()
        except (OSError, ReproError) as exc:
            with self._progress:
                self.error = exc
                self._progress.notify_all()
        finally:
            self._close_files()
            sock, self._sock = self._sock, None
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    def stop(self, timeout: float = 10.0) -> None:
        """Stop following; joins the thread when one is running."""
        self._stop_flag.set()
        with self._progress:
            self._progress.notify_all()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)

    def wait_applied(self, count: int, timeout: float = 10.0) -> bool:
        """Block until ``applied >= count`` (False on timeout).

        Wakes on the apply notification itself -- no poll interval --
        so a supervisor waiting for a follower to catch up pays only
        the actual replication latency.
        """
        deadline = time.monotonic() + timeout
        with self._progress:
            while self.applied < count:
                if self.error is not None:
                    raise ReportingError(
                        f"replica follower failed: {self.error}"
                    ) from self.error
                if self._stop_flag.is_set():
                    return False  # stop() wakes waiters rather than strand them
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._progress.wait(remaining)
        return True

    def health(self) -> HealthStatus:
        """This follower's view of itself (supervisor catch-up input)."""
        return HealthStatus(
            epoch=self.leader_epoch,
            role="follower",
            applied=self.applied,
        )

    def promote(self, **server_kwargs) -> ReportServer:
        """Stop following and recover a live server from the directory.

        ``server_kwargs`` must match the dead leader's configuration
        (``shards`` in particular), exactly as for
        :meth:`ReportServer.recover` after a local crash.
        """
        self.stop()
        if self.error is not None:
            raise ReportingError(
                f"cannot promote a failed follower: {self.error}"
            ) from self.error
        server = ReportServer.recover(self.data_dir, **server_kwargs)
        # The promoted leader's epoch must strictly exceed every epoch
        # the old leader served under: recovery replayed the shipped
        # epoch records, heartbeats carried the live value -- bump past
        # the larger of the two (at least once).
        target = max(self.leader_epoch, server.epoch)
        while server.epoch <= target:
            server.bump_epoch()
        return server

    # -- the follow loop ----------------------------------------------------

    def _connect(self) -> socket.socket:
        # Retry refusals until the deadline: a follower is routinely
        # started in parallel with (or just before) its leader, and a
        # refused connect only means the listener isn't up *yet*.
        deadline = time.monotonic() + self.connect_timeout
        while True:
            remaining = max(0.05, deadline - time.monotonic())
            try:
                return socket.create_connection(self.leader, timeout=remaining)
            except ConnectionRefusedError:
                if time.monotonic() >= deadline or self._stop_flag.is_set():
                    raise
                time.sleep(min(0.05, remaining))

    def _follow(self) -> None:
        sock = self._connect()
        self._sock = sock
        # Short receive timeout: the loop polls the stop flag between
        # reads instead of blocking forever on an idle leader.
        sock.settimeout(self.poll_interval)
        reader = MessageReader()
        while not self._stop_flag.is_set():
            try:
                data = sock.recv(1 << 16)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break  # leader hung up (shutdown or death)
            applied = 0
            dirty = []
            for kind, payload in reader.feed(data):
                applied += self._apply(kind, payload, dirty)
            # One fsync per receive chunk, not per record: natural
            # batching, and the ACK below only ever claims durable work.
            for handle in dirty:
                os.fsync(handle.fileno())
            if applied:
                with self._progress:
                    self.applied += applied
                    self._progress.notify_all()
                try:
                    sock.sendall(
                        encode_message(MSG_ACK, struct.pack(">Q", self.applied))
                    )
                except OSError:
                    break

    def _apply(self, kind: bytes, payload: bytes, dirty: list) -> int:
        if kind == MSG_HELLO:
            if len(payload) != 1:
                raise ReportingError("malformed replication HELLO")
            self.shard_count = payload[0]
            if self.expect_shards is not None and self.shard_count != self.expect_shards:
                raise ReportingError(
                    f"leader runs {self.shard_count} shard(s), follower "
                    f"expected {self.expect_shards}"
                )
            self._reset_dir()
            return 0
        if kind == MSG_SNAPSHOT:
            if payload[:4] != SNAPSHOT_MAGIC:
                raise ReportingError("replication snapshot lost its magic")
            tmp_path = os.path.join(self.data_dir, SNAPSHOT_NAME + ".tmp")
            with open(tmp_path, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, os.path.join(self.data_dir, SNAPSHOT_NAME))
            # Mirror the leader's compaction: the snapshot subsumes the
            # WALs, so truncate them exactly as the leader truncated its.
            for handle in self._files.values():
                os.ftruncate(handle.fileno(), 0)
                dirty.append(handle) if handle not in dirty else None
            self.snapshots += 1
            return 1
        if kind == MSG_RECORD:
            if not payload:
                raise ReportingError("empty replication RECORD")
            handle = self._wal_handle(payload[0])
            handle.write(payload[1:])
            if handle not in dirty:
                dirty.append(handle)
            return 1
        if kind == MSG_HEARTBEAT:
            # Liveness beat: remember the leader's epoch (promotion must
            # exceed it) but never advance ``applied`` -- catch-up is
            # measured in durable records, not beats.
            health = decode_health(payload)
            self.heartbeats += 1
            if health.epoch > self.leader_epoch:
                self.leader_epoch = health.epoch
            return 0
        if kind == MSG_ACK:
            return 0  # ours to send, not to receive; tolerate echoes
        raise ReportingError(f"unknown replication message {kind!r}")

    # -- the followed directory ---------------------------------------------

    def _wal_path(self, index: int) -> str:
        if index == META_WAL:
            return os.path.join(self.data_dir, "wal-meta.log")
        return os.path.join(self.data_dir, f"wal-{index:03d}.log")

    def _wal_handle(self, index: int):
        handle = self._files.get(index)
        if handle is None:
            if index != META_WAL and (
                self.shard_count is None or index >= self.shard_count
            ):
                raise ReportingError(f"RECORD for out-of-range shard {index}")
            handle = self._files[index] = open(
                self._wal_path(index), "ab", buffering=0
            )
        return handle

    def _reset_dir(self) -> None:
        """HELLO means a full bootstrap follows: start from nothing.

        Any earlier followed state (a previous leader, a stale copy) is
        superseded by the incoming snapshot; keeping old WAL bytes would
        replay another timeline's records into the promoted server.
        """
        self._close_files()
        for name in sorted(os.listdir(self.data_dir)):
            if name == SNAPSHOT_NAME or name.endswith(".tmp") or (
                name.startswith("wal-") and name.endswith(".log")
            ):
                try:
                    os.unlink(os.path.join(self.data_dir, name))
                except OSError:
                    pass
        self._wal_handle(META_WAL)
        for index in range(self.shard_count or 0):
            self._wal_handle(index)

    def _close_files(self) -> None:
        files, self._files = self._files, {}
        for handle in files.values():
            try:
                handle.close()
            except OSError:
                pass
