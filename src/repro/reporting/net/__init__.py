"""Networked report ingestion: TCP service, replication, transport.

The socket-facing layer over the in-process
:class:`~repro.reporting.server.ReportServer`:

* :mod:`~repro.reporting.net.framing` -- incremental DRPT frame
  slicing, per-frame status bytes, replication message codec.
* :mod:`~repro.reporting.net.service` -- the asyncio ingest service
  (:class:`IngestService`) and its daemon-thread host
  (:class:`ServiceHandle`).
* :mod:`~repro.reporting.net.replication` -- leader->follower WAL
  shipping (:class:`ReplicaFollower`) and failover by promotion.
* :mod:`~repro.reporting.net.transport` -- the device-side
  :class:`TcpTransport` plugged into ``ReportClient``.
"""

from repro.reporting.net.framing import (
    META_WAL,
    MSG_ACK,
    MSG_HELLO,
    MSG_RECORD,
    MSG_SNAPSHOT,
    FrameReader,
    MessageReader,
    decode_status,
    encode_message,
    encode_status,
)
from repro.reporting.net.replication import ReplicaFollower, snapshot_file_bytes
from repro.reporting.net.service import (
    INGEST_BUCKETS,
    ConnStats,
    IngestService,
    ServiceHandle,
)
from repro.reporting.net.transport import TcpTransport

__all__ = [
    "META_WAL",
    "MSG_ACK",
    "MSG_HELLO",
    "MSG_RECORD",
    "MSG_SNAPSHOT",
    "FrameReader",
    "MessageReader",
    "decode_status",
    "encode_message",
    "encode_status",
    "ReplicaFollower",
    "snapshot_file_bytes",
    "INGEST_BUCKETS",
    "ConnStats",
    "IngestService",
    "ServiceHandle",
    "TcpTransport",
]
