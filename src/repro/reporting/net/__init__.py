"""Networked report ingestion: TCP service, replication, supervision.

The socket-facing layer over the in-process
:class:`~repro.reporting.server.ReportServer`:

* :mod:`~repro.reporting.net.framing` -- incremental DRPT frame
  slicing, per-frame status bytes, replication message codec, and the
  cluster-control wire (health probes, fences, NOT_LEADER redirects).
* :mod:`~repro.reporting.net.service` -- the asyncio ingest service
  (:class:`IngestService`) and its daemon-thread host
  (:class:`ServiceHandle`).
* :mod:`~repro.reporting.net.replication` -- leader->follower WAL
  shipping (:class:`ReplicaFollower`) and failover by promotion.
* :mod:`~repro.reporting.net.supervisor` -- heartbeat monitoring,
  automatic promotion and epoch fencing (:class:`ClusterSupervisor`).
* :mod:`~repro.reporting.net.transport` -- the device-side
  :class:`TcpTransport` plugged into ``ReportClient`` (multi-endpoint,
  redirect-following).
"""

from repro.reporting.net.framing import (
    FENCE_MAGIC,
    HEALTH_MAGIC,
    META_WAL,
    MSG_ACK,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RECORD,
    MSG_SNAPSHOT,
    FrameReader,
    HealthStatus,
    MessageReader,
    decode_health,
    decode_redirect,
    decode_status,
    encode_health,
    encode_message,
    encode_redirect,
    encode_status,
    format_endpoint,
    parse_endpoint,
)
from repro.reporting.net.replication import ReplicaFollower, snapshot_file_bytes
from repro.reporting.net.service import (
    INGEST_BUCKETS,
    ConnStats,
    IngestService,
    ServiceHandle,
)
from repro.reporting.net.supervisor import (
    ClusterSupervisor,
    FailoverEvent,
    probe_health,
    send_fence,
)
from repro.reporting.net.transport import TcpTransport

__all__ = [
    "FENCE_MAGIC",
    "HEALTH_MAGIC",
    "META_WAL",
    "MSG_ACK",
    "MSG_HEARTBEAT",
    "MSG_HELLO",
    "MSG_RECORD",
    "MSG_SNAPSHOT",
    "FrameReader",
    "HealthStatus",
    "MessageReader",
    "decode_health",
    "decode_redirect",
    "decode_status",
    "encode_health",
    "encode_message",
    "encode_redirect",
    "encode_status",
    "format_endpoint",
    "parse_endpoint",
    "ReplicaFollower",
    "snapshot_file_bytes",
    "INGEST_BUCKETS",
    "ConnStats",
    "IngestService",
    "ServiceHandle",
    "ClusterSupervisor",
    "FailoverEvent",
    "probe_health",
    "send_fence",
    "TcpTransport",
]
