"""Device-side report client: sign, send, retry, spool.

The paper assumes the REPORT response "sends the repackaged app's key
fingerprint home" -- over real mobile networks, where the home server
is sometimes unreachable.  ``ReportClient`` makes that channel honest:

* every report is stamped with a fresh random **nonce**, signed with
  the device's **attestation key**, and handed to a ``transport``
  callable (the in-process :class:`~repro.reporting.server.ReportServer`
  adapter, or anything else that accepts a
  :class:`~repro.reporting.wire.SignedReport`);
* a transport that raises :class:`repro.errors.TransportError` is
  retried with **exponential backoff plus jitter** (capped attempts,
  capped delay; delays accumulate on a virtual clock -- nothing
  actually sleeps unless a ``sleep`` callable is supplied);
* past the attempt budget the signed report lands in a bounded
  **offline spool**, flushed on the next opportunity (``flush()``);
  spool overflow drops the oldest report and counts it.

**Failover is invisible here by design.**  Cluster redirects
(``NOT_LEADER`` from a fenced stale leader) are followed *inside* the
transport under its own ``redirect_budget`` -- one ``deliver()`` attempt
either lands on the current leader or raises ``TransportError``.  The
client's ``max_attempts``/backoff budget therefore only pays for real
unavailability, never for re-routing, and a spooled backlog drains
through a leader change in a single ``flush()`` pass with each report
delivered exactly once (the promoted leader's recovered dedup window
rejects anything the old leader already accepted).

The client also terminates the in-VM text channel: the runtime's
``android.net.report`` handler forwards the structured payload string
to :meth:`send_text`, which parses it into a wire report.
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from typing import Callable, Deque, Optional

from repro.chaos.faults import fault_point
from repro.crypto.rsa import RSAKeyPair
from repro.errors import TransportError
from repro.reporting.wire import (
    DetectionReport,
    SignedReport,
    report_from_text,
    sign_report,
)

#: A transport delivers one signed report and returns the server's
#: status (opaque to the client); unreachable transports raise
#: :class:`TransportError`.
Transport = Callable[[SignedReport], object]


class ReportClient:
    """One device's (or one attestation batch's) reporting endpoint."""

    def __init__(
        self,
        transport: Transport,
        attestation_key: RSAKeyPair,
        device_id: str,
        *,
        seed: int = 0,
        max_attempts: int = 4,
        base_backoff: float = 0.5,
        max_backoff: float = 60.0,
        jitter: float = 0.5,
        spool_limit: int = 256,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        #: Public so callers can read transport-side failover telemetry
        #: (``transport.redirects``, ``transport.last_epoch`` on TCP).
        self.transport = transport
        self._transport = transport
        self._key = attestation_key
        self.device_id = device_id
        self._rng = random.Random(seed)
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.spool_limit = spool_limit
        self._sleep = sleep
        self.spool: Deque[SignedReport] = deque()

        # Observability.
        self.delivered = 0
        self.retries = 0
        self.spool_dropped = 0
        self.backoff_spent = 0.0
        self.backoff_log: list = []
        self.last_signed: Optional[SignedReport] = None
        self.last_status: Optional[object] = None

    # -- sending ------------------------------------------------------------

    def report(
        self,
        *,
        app_name: str,
        bomb_id: str,
        observed_key_hex: str,
        detection_method: str = "public_key",
        timestamp: float = 0.0,
        device_id: Optional[str] = None,
    ) -> Optional[object]:
        """Sign and deliver one detection report.

        Returns the transport's status, or None when the report was
        spooled for later.  ``device_id`` overrides the client default
        (fleet drivers share a client across a batch of devices, the
        way real devices share batch attestation keys).
        """
        body = DetectionReport(
            app_name=app_name,
            bomb_id=bomb_id,
            device_id=device_id or self.device_id,
            observed_key_hex=observed_key_hex.lower(),
            detection_method=detection_method,
            timestamp=timestamp,
            nonce=self._rng.getrandbits(64),
        )
        return self.deliver(sign_report(body, self._key))

    def send_text(self, text: str, timestamp: float = 0.0) -> Optional[object]:
        """Terminate the in-VM ``android.net.report`` string channel.

        Messages that do not name a key fingerprint (free-form logs)
        are ignored rather than sent.
        """
        body = report_from_text(
            text,
            device_id=self.device_id,
            timestamp=timestamp,
            nonce=self._rng.getrandbits(64),
        )
        if body is None:
            return None
        return self.deliver(sign_report(body, self._key))

    def deliver(self, signed: SignedReport) -> Optional[object]:
        """Push one signed report through retry/backoff, spooling on failure."""
        self.last_signed = signed
        self.last_status = None
        for attempt in range(self.max_attempts):
            try:
                fault_point("report.transport")
                status = self._transport(signed)
            except TransportError:
                self.retries += 1
                if attempt + 1 < self.max_attempts:
                    self._back_off(attempt)
                continue
            self.delivered += 1
            self.last_status = status
            return status
        self._spool(signed)
        return None

    def _back_off(self, attempt: int) -> None:
        delay = min(self.max_backoff, self.base_backoff * (2 ** attempt))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        self.backoff_spent += delay
        self.backoff_log.append(delay)
        if self._sleep is not None:
            self._sleep(delay)

    def _spool(self, signed: SignedReport) -> None:
        if len(self.spool) >= self.spool_limit:
            self.spool.popleft()
            self.spool_dropped += 1
        self.spool.append(signed)

    # -- spool --------------------------------------------------------------

    def flush(self) -> int:
        """Retry every spooled report once; returns how many got through.

        Reports that still fail return to the spool (at the back, so one
        poisoned report cannot starve the rest).
        """
        delivered = 0
        for _ in range(len(self.spool)):
            signed = self.spool.popleft()
            # Spooled reports sat on flash; a chaos plan may rot their
            # signature bytes.  The server then rejects the report
            # (BAD_SIGNATURE) -- flush still completes and the spool
            # still drains, which is the recovery invariant.
            signature = fault_point("client.spool", signed.signature)
            if signature is not signed.signature:
                signed = dataclasses.replace(signed, signature=signature)
            try:
                fault_point("report.transport")
                status = self._transport(signed)
            except TransportError:
                self.retries += 1
                self._spool(signed)
                continue
            self.delivered += 1
            self.last_status = status
            delivered += 1
        return delivered

    @property
    def spooled(self) -> int:
        return len(self.spool)
