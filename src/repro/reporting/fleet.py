"""Fleet-scale driver: millions of devices through the report pipeline.

The ROADMAP north star is "heavy traffic from millions of users"; the
paper's Table 3 protocol (one interpreter session per device) tops out
around tens of devices.  This driver closes the gap by splitting the
work the way a load generator would:

1. **Calibrate** an :class:`OutcomeModel` from a handful of *real*
   interpreter play sessions (:mod:`repro.userside.simulation` /
   :mod:`repro.vm`): what fraction of sessions fire a REPORT response,
   which foreign key they observe, how often the experience is bad
   enough to tank the rating.
2. **Stream** synthetic per-device outcomes for the whole fleet in
   batches, sampling *reporting devices* directly with geometric
   skip-sampling -- cost is O(reports + batches), not O(devices), and
   no per-device object survives the batch that generated it.
3. **Drive** the real pipeline end to end: every sampled report is
   signed by an attestation-key pool (batch keys shared across devices,
   like real device attestation), delivered through a
   :class:`~repro.reporting.client.ReportClient` (retry/backoff against
   an optionally flaky transport), ingested by the sharded
   :class:`~repro.reporting.server.ReportServer`, and -- optionally --
   reflected into a :class:`~repro.userside.market.Market` listing via
   bulk download/rating updates.

Adversarial traffic (duplicates, replays, forged signatures) is
injected at configurable rates so a fleet run also demonstrates the
rejection paths.  The result records throughput, the peak bounded-state
size (the O(shards) memory claim), and the takedown verdict.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional

from repro.crypto.rsa import RSAKeyPair
from repro.errors import ReportingError, TransportError
from repro.reporting.client import ReportClient
from repro.reporting.server import ReportServer, SubmitStatus, TakedownPolicy
from repro.reporting.verdicts import AggregatedVerdict
from repro.reporting.wire import SignedReport, parse_report_text


@dataclass(frozen=True)
class OutcomeModel:
    """Per-session outcome probabilities, calibrated or hand-set."""

    report_rate: float
    observed_key_hex: str
    bad_experience_rate: float
    bomb_pool: int = 8   # distinct bomb ids reports cite

    @classmethod
    def calibrate(
        cls,
        apk,
        sessions: int = 5,
        events: int = 350,
        seed: int = 0,
        engine=None,
    ) -> "OutcomeModel":
        """Run real interpreter sessions and measure the outcome rates.

        Sessions run on a :class:`repro.vm.sessions.SessionEngine` --
        the same engine an opt-in real-session fleet uses -- with the
        protocol (device draws, seeds, per-event budgets) this method
        has always used.  Pass ``engine`` to share one engine (and its
        compiled method bodies) between calibration and the fleet run.
        """
        from repro.vm.sessions import SessionEngine

        if engine is None:
            engine = SessionEngine(apk, seed=seed, events=events)
        reporting = bad = detected = 0
        observed = ""
        for outcome in engine.play(sessions, events=events):
            keys = [parse_report_text(text).get("key") for text in outcome.reports]
            keys = [key for key in keys if key]
            if keys:
                reporting += 1
                observed = observed or keys[0]
            if outcome.detections:
                detected += 1
            if outcome.bad_experience:
                bad += 1
        report_rate = reporting / sessions if sessions else 0.0
        if not observed and detected:
            # Sessions detected (the installed key mismatched) but no
            # REPORT-response bomb happened to fire in the sample.  A
            # REPORT payload reads android.pm.get_public_key -- the
            # installed certificate fingerprint -- so detection *is* an
            # observation of that key; treat detecting sessions as
            # eventual reporters.
            observed = engine.package.cert_fingerprint_hex
            report_rate = detected / sessions
        return cls(
            report_rate=report_rate,
            observed_key_hex=observed,
            bad_experience_rate=bad / sessions if sessions else 0.0,
        )


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet run."""

    devices: int = 1_000_000
    batch_size: int = 50_000
    shards: int = 8
    seed: int = 0
    batch_seconds: float = 60.0       # fleet-clock time one batch spans
    attestation_pool: int = 4         # batch attestation keys (and clients)
    target_reports: Optional[int] = 25_000   # cap: sample the reporting
                                             # subpopulation down to this
    calibration_sessions: int = 5
    calibration_events: int = 350
    duplicate_rate: float = 0.0       # client double-sends
    forge_rate: float = 0.0           # pirate-forged envelopes
    replay_stale: bool = False        # resubmit a stale report each batch
    transport_failure_rate: float = 0.0
    stop_on_takedown: bool = False
    policy: TakedownPolicy = field(default_factory=TakedownPolicy)
    data_dir: Optional[str] = None    # WAL + snapshot directory (durable run)
    snapshot_every: int = 1024        # appends between snapshot compactions
    crash_after_batch: Optional[int] = None  # kill + recover after this batch
                                             # (requires data_dir)
    transport: str = "inproc"         # "inproc" | "tcp" (real loopback sockets)
    replica_dir: Optional[str] = None  # follow the leader's WAL here (tcp +
                                       # data_dir; enables failover)
    failover_after_batch: Optional[int] = None  # kill the leader service at
                                                # this batch boundary and
                                                # promote the follower
    supervised: bool = False          # let a ClusterSupervisor detect the
                                      # kill and promote (no manual promote)
    heartbeat_miss_threshold: int = 3  # consecutive probe misses before the
                                       # supervisor declares the leader dead
    real_sessions: bool = False       # run a real interpreted play session
                                       # for every sampled reporter instead of
                                       # trusting the calibrated model (needs
                                       # a session_engine passed to run_fleet)


@dataclass
class FleetResult:
    """Everything a fleet run observed."""

    app_name: str
    devices: int
    batches: int
    reports_sent: int
    statuses: Dict[str, int]
    verdict: AggregatedVerdict
    offender_key: str
    takedown_clock: Optional[float]   # fleet-sim seconds at first TAKEDOWN
    average_rating: float
    wall_seconds: float
    peak_tracked_state: int
    spooled: int
    client_retries: int
    metrics: Dict[str, object]
    recoveries: int = 0               # mid-run kill-and-recover cycles
    wal_replayed: int = 0             # records replayed across recoveries
    failover_epoch: int = 0           # epoch after a supervised promotion

    @property
    def reports_per_second(self) -> float:
        return self.reports_sent / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def devices_per_second(self) -> float:
        return self.devices / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> str:
        lines = [
            f"fleet: {self.devices:,} devices in {self.batches} batches "
            f"({self.wall_seconds:.2f}s wall, "
            f"{self.devices_per_second:,.0f} devices/s)",
            f"reports: {self.reports_sent:,} sent "
            f"({self.reports_per_second:,.0f}/s); statuses: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.statuses.items())),
            f"verdict: {self.verdict.value}"
            + (f" against {self.offender_key[:16]}..." if self.offender_key else ""),
            f"peak tracked state: {self.peak_tracked_state} entries "
            f"(shard-bounded); rating: {self.average_rating:.1f}",
        ]
        if self.takedown_clock is not None:
            lines.append(f"takedown at fleet-clock {self.takedown_clock:.0f}s")
        if self.recoveries:
            lines.append(
                f"crash-recoveries: {self.recoveries} "
                f"({self.wal_replayed} WAL records replayed)"
            )
        if self.failover_epoch:
            lines.append(
                f"supervised failover: promoted at epoch {self.failover_epoch}"
            )
        return "\n".join(lines)


def _sample_indices(n: int, p: float, rng: random.Random) -> Iterator[int]:
    """Indices of successes among ``n`` Bernoulli(p) draws, O(successes).

    Geometric skip-sampling: gaps between successes follow a geometric
    law, so the loop touches only the devices that actually report.
    """
    if p <= 0.0 or n <= 0:
        return
    if p >= 1.0:
        yield from range(n)
        return
    log_q = math.log1p(-p)
    index = -1
    while True:
        gap = int(math.log(max(rng.random(), 1e-300)) / log_q)
        index += gap + 1
        if index >= n:
            return
        yield index


def run_fleet(
    app_name: str,
    original_key_hex: str,
    model: OutcomeModel,
    config: FleetConfig = FleetConfig(),
    server: Optional[ReportServer] = None,
    market=None,
    listing=None,
    session_engine=None,
) -> FleetResult:
    """Stream a whole fleet's play-session outcomes through the pipeline.

    Tracked state is O(config.shards): per-device work is a sampled
    report (signed, delivered, forgotten) or a bulk counter bump.
    Pass ``market``/``listing`` to close the ecosystem loop -- bulk
    downloads and ratings flow into the listing and a TAKEDOWN verdict
    pulls it.  With ``config.data_dir`` the server journals to a WAL;
    ``config.crash_after_batch`` kills it at that batch boundary and
    recovers from disk mid-run (the chaos crash-restart model at fleet
    scale).

    ``config.transport="tcp"`` serves the same server over a real
    loopback socket (:class:`~repro.reporting.net.ServiceHandle`) and
    gives every client a :class:`~repro.reporting.net.TcpTransport`;
    with ``replica_dir`` a WAL-shipping follower trails the leader, and
    ``failover_after_batch`` kills the leader service mid-run and
    promotes the follower -- the networked analogue of
    ``crash_after_batch``.
    """
    if config.real_sessions and session_engine is None:
        raise ReportingError(
            "real_sessions requires a session_engine "
            "(repro.vm.sessions.SessionEngine over the suspect apk)"
        )
    tcp = config.transport == "tcp"
    if config.transport not in ("inproc", "tcp"):
        raise ReportingError(
            f"unknown fleet transport {config.transport!r} "
            "(expected 'inproc' or 'tcp')"
        )
    if config.crash_after_batch is not None and config.data_dir is None:
        raise ReportingError("crash_after_batch requires data_dir")
    if tcp and config.crash_after_batch is not None:
        raise ReportingError(
            "crash_after_batch is the in-process fault; over tcp use "
            "failover_after_batch"
        )
    if config.replica_dir is not None and not (tcp and config.data_dir):
        raise ReportingError("replica_dir requires transport='tcp' and data_dir")
    if config.failover_after_batch is not None and config.replica_dir is None:
        raise ReportingError(
            "failover_after_batch requires replica_dir (a follower to promote)"
        )
    if config.supervised and config.failover_after_batch is None:
        raise ReportingError(
            "supervised requires failover_after_batch (a kill to supervise)"
        )
    owns_server = server is None
    if config.failover_after_batch is not None and not owns_server:
        raise ReportingError("failover_after_batch requires a fleet-owned server")
    if server is None:
        server = ReportServer(
            shards=config.shards, policy=config.policy,
            data_dir=config.data_dir, snapshot_every=config.snapshot_every,
        )
    if app_name not in server.apps:
        server.register_app(app_name, original_key_hex)

    net_handle = None
    follower = None
    endpoint = {"addr": None}  # mutable: failover re-points every client
    if tcp:
        from repro.reporting.net import ReplicaFollower, ServiceHandle, TcpTransport

        net_handle = ServiceHandle.start(
            server,
            replication_port=0 if config.replica_dir is not None else None,
        )
        endpoint["addr"] = net_handle.address
        if config.replica_dir is not None:
            follower = ReplicaFollower(
                config.replica_dir,
                net_handle.replication_address,
                expect_shards=server.shard_count,
            ).start()
            # Wait for the bootstrap snapshot so an early leader kill
            # still promotes a directory that knows the app.
            if not follower.wait_applied(1):
                raise ReportingError("replica follower never bootstrapped")

    rng = random.Random(config.seed)
    keys = [
        RSAKeyPair.generate(seed=config.seed * 1000 + 17 + i)
        for i in range(max(1, config.attestation_pool))
    ]

    def on_server(fn):
        """Run ``fn(server)`` wherever the server lives right now --
        directly in-process, or on the service loop over tcp."""
        if net_handle is not None:
            return net_handle.call(fn)
        return fn(server)

    def make_transport(send):
        def transport(signed: SignedReport):
            if (
                config.transport_failure_rate
                and rng.random() < config.transport_failure_rate
            ):
                raise TransportError("fleet uplink unavailable")
            return send(signed)
        return transport

    if tcp:
        tcp_transports = [
            TcpTransport(lambda: endpoint["addr"])
            for _ in range(max(1, config.attestation_pool))
        ]
        transports = [make_transport(sender) for sender in tcp_transports]
    else:
        transports = [
            make_transport(lambda signed: server.submit(signed))
            for _ in range(max(1, config.attestation_pool))
        ]

    clients = [
        ReportClient(
            transports[i],
            key,
            device_id=f"attestation-batch-{i}",
            seed=config.seed * 7919 + i,
        )
        for i, key in enumerate(keys)
    ]

    report_rate = model.report_rate
    if config.target_reports is not None and config.devices > 0:
        report_rate = min(report_rate, config.target_reports / config.devices)

    statuses: Dict[str, int] = {}
    reports_sent = 0
    peak_tracked = 0
    fleet_clock = 0.0
    takedown_clock: Optional[float] = None
    verdict, offender = AggregatedVerdict.CLEAN, ""
    rating_sum = 0
    rating_count = 0
    stale_report: Optional[SignedReport] = None
    batches = 0
    recoveries = 0
    wal_replayed = 0
    failover_epoch = 0
    started = time.monotonic()

    for batch_start in range(0, config.devices, config.batch_size):
        batches += 1
        batch = min(config.batch_size, config.devices - batch_start)
        brng = random.Random(config.seed * 1_000_003 + batches)

        # Ecosystem loop: the batch's users download first (rating-gated).
        if market is not None and listing is not None:
            active = market.download_batch(listing, batch, rng=brng)
        else:
            active = batch

        for offset in _sample_indices(active, report_rate, brng):
            device_index = batch_start + offset
            bomb_id = f"b{device_index % model.bomb_pool:03d}"
            observed_key_hex = model.observed_key_hex
            if config.real_sessions:
                # Opt-in fidelity: actually interpret this device's play
                # session instead of trusting the calibrated outcome.
                # No report emitted by the real session means no report
                # on the wire -- the synthetic sample overestimated.
                outcome = session_engine.play_one(device_index)
                if not outcome.reports:
                    statuses["session_no_report"] = (
                        statuses.get("session_no_report", 0) + 1
                    )
                    continue
                parsed = parse_report_text(outcome.reports[0])
                bomb_id = parsed.get("bomb") or bomb_id
                observed_key_hex = parsed.get("key") or observed_key_hex
            client = clients[device_index % len(clients)]
            timestamp = fleet_clock + brng.random() * config.batch_seconds
            client.report(
                app_name=app_name,
                bomb_id=bomb_id,
                observed_key_hex=observed_key_hex,
                timestamp=timestamp,
                device_id=f"dev-{device_index:09d}",
            )
            reports_sent += 1
            status = client.last_status
            name = status.value if isinstance(status, SubmitStatus) else "spooled"
            statuses[name] = statuses.get(name, 0) + 1
            signed = client.last_signed
            if stale_report is None:
                stale_report = signed
            if config.duplicate_rate and brng.random() < config.duplicate_rate:
                dup = on_server(lambda s: s.submit(signed))
                statuses[dup.value] = statuses.get(dup.value, 0) + 1
            if config.forge_rate and brng.random() < config.forge_rate:
                forged = replace(signed, signature=signed.signature ^ 1)
                bad = on_server(lambda s: s.submit(forged))
                statuses[bad.value] = statuses.get(bad.value, 0) + 1

        if (
            config.replay_stale
            and stale_report is not None
            and fleet_clock - stale_report.report.timestamp > server.max_report_age
        ):
            replayed = on_server(lambda s: s.submit(stale_report))
            statuses[replayed.value] = statuses.get(replayed.value, 0) + 1

        on_server(lambda s: s.process())
        for client in clients:
            if client.spooled:
                client.flush()

        # Ratings: detections sour the reviews (bulk counters, no lists).
        bad_count = int(round(active * model.bad_experience_rate))
        good_count = active - bad_count
        rating_sum += bad_count * 1 + good_count * 5
        rating_count += active
        if market is not None and listing is not None:
            if bad_count:
                market.rate_batch(listing, 1, bad_count)
            if good_count:
                market.rate_batch(listing, 5, good_count)

        fleet_clock += config.batch_seconds
        tracked = on_server(lambda s: s.tracked_state_size())
        if tracked > peak_tracked:
            peak_tracked = tracked

        if tcp and batches == config.failover_after_batch and follower is not None:
            # The networked crash model: the leader *service* dies with
            # no drain (connections break, the replication stream hits
            # EOF mid-flight), and the follower's directory -- bootstrap
            # snapshot + every shipped WAL record -- is promoted through
            # the same snapshot+replay path a local crash uses.
            old_endpoint = net_handle.address
            net_handle.kill()
            server.crash()
            if config.supervised:
                # Nobody calls promote: a ClusterSupervisor probes the
                # dead endpoint, declares it after miss_threshold
                # strikes, and performs the epoch-bumping promotion
                # itself.  The fleet only re-points its endpoint cell.
                from repro.reporting.net import ClusterSupervisor

                supervisor = ClusterSupervisor(
                    old_endpoint,
                    [follower],
                    server_kwargs=dict(
                        shards=config.shards, policy=config.policy,
                        snapshot_every=config.snapshot_every,
                    ),
                    miss_threshold=config.heartbeat_miss_threshold,
                    probe_timeout=0.5,
                )
                ticks = 0
                while supervisor.failovers == 0 and ticks < 64:
                    supervisor.tick()
                    ticks += 1
                if supervisor.failovers != 1:
                    raise ReportingError(
                        "supervised failover never promoted the follower"
                    )
                server = supervisor.promoted_server
                net_handle = supervisor.promoted_handle
                failover_epoch = server.epoch
            else:
                server = follower.promote(
                    shards=config.shards, policy=config.policy,
                    snapshot_every=config.snapshot_every,
                )
            follower = None
            if app_name not in server.apps:
                server.register_app(app_name, original_key_hex)
            recoveries += 1
            wal_replayed += server.metrics.counter("wal.replayed").value
            server.process()
            if not config.supervised:
                net_handle = ServiceHandle.start(server)
            endpoint["addr"] = net_handle.address

        if batches == config.crash_after_batch:
            # Kill-and-recover at the batch boundary: drop the server
            # with no clean shutdown and rebuild it from the WAL +
            # snapshot.  The transport closure picks up the rebound
            # ``server``; dedup windows and takedown state must survive.
            server.crash()
            server = ReportServer.recover(
                config.data_dir,
                shards=config.shards, policy=config.policy,
                snapshot_every=config.snapshot_every,
            )
            recoveries += 1
            wal_replayed += server.metrics.counter("wal.replayed").value
            server.process()

        verdict, offender = on_server(lambda s: s.verdict(app_name))
        if verdict is AggregatedVerdict.TAKEDOWN and takedown_clock is None:
            takedown_clock = fleet_clock
            if market is not None:
                on_server(lambda s: market.process_server_takedowns(s))
            if config.stop_on_takedown:
                break

    if net_handle is not None:
        net_handle.stop()
        net_handle = None
    if follower is not None:
        follower.stop()
    if tcp:
        for tcp_transport in tcp_transports:
            tcp_transport.close()

    wall = time.monotonic() - started
    metrics = server.metrics
    metrics.counter("fleet.devices_simulated").inc(config.devices)
    metrics.counter("fleet.reports_sent").inc(reports_sent)
    metrics.gauge("fleet.peak_tracked_state").set(peak_tracked)
    if owns_server and config.data_dir is not None:
        server.close()

    return FleetResult(
        app_name=app_name,
        devices=config.devices,
        batches=batches,
        reports_sent=reports_sent,
        statuses=statuses,
        verdict=verdict,
        offender_key=offender,
        takedown_clock=takedown_clock,
        average_rating=rating_sum / rating_count if rating_count else 0.0,
        wall_seconds=wall,
        peak_tracked_state=peak_tracked,
        spooled=sum(client.spooled for client in clients),
        client_retries=sum(client.retries for client in clients),
        metrics=metrics.snapshot(),
        recoveries=recoveries,
        wal_replayed=wal_replayed,
        failover_epoch=failover_epoch,
    )
