"""Durable ingestion state: per-shard WAL + snapshot recovery.

The decentralized takedown story only works if the backend that
accumulates "thousands of user devices" worth of evidence survives to
act on it.  :class:`~repro.reporting.server.ReportServer` keeps all of
its bounded state in memory; this module makes that state survive a
process crash:

* **Write-ahead log.**  Every accepted report and every takedown
  transition is journaled *before* it mutates server state.  Reports go
  to one WAL file per shard (same ``crc32(device_id)`` routing as the
  in-memory shards), registrations and takedowns to a meta WAL, so
  replay order within a shard matches acceptance order and cross-shard
  order never mattered in the first place.
* **Record framing.**  ``>I length | >I crc32(payload) | payload`` --
  length-prefixed and checksummed, so replay detects both a torn tail
  (the record being written when the process died) and bit rot.  A bad
  record stops that file's replay, is counted in
  ``recovery.torn_records``, and the file is truncated back to the last
  good byte so the log stays appendable.
* **Snapshot compaction.**  Every ``snapshot_every`` appends the whole
  durable state (dedup windows, queues, sliding windows, takedown
  markers) is serialized, crc-guarded, written to a temp file,
  *verified by re-reading*, atomically renamed over the previous
  snapshot, and only then are the WALs truncated.  A snapshot that
  fails verification (``snapshot.write`` fault, disk error) aborts the
  compaction and keeps the WAL -- durability never regresses.
* **Recovery.**  ``ReportServer.recover(data_dir)`` loads the snapshot
  (ignoring a corrupt one: the WAL behind it is the fallback), replays
  the meta WAL then each shard WAL, and reopens the logs for append.
  Replay is idempotent -- a crash between snapshot rename and WAL
  truncation merely replays records whose ``(device, nonce)`` the
  snapshot already remembers.

What is deliberately *not* persisted: metrics (observability restarts
from zero), backpressure-dropped and rejected reports (never acked, the
client retries), and fleet-driver simulation state.

Fault points: ``wal.append`` (corrupts or fails a record write),
``wal.fsync`` (fails the sync barrier), ``snapshot.write`` (corrupts or
fails the snapshot payload).  All three degrade gracefully: a failed
append rejects the report as ``DROPPED`` (retryable, never acked-then-
lost), a failed snapshot keeps the WAL.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.chaos.faults import fault_point
from repro.errors import DurabilityError, ReproError, WireError
from repro.metrics import MetricsRegistry
from repro.reporting.wire import (
    DetectionReport,
    _decode_body,
    _pack_str,
    _unpack_str,
    canonical_bytes,
)

#: WAL record types.
RECORD_REPORT = 1
RECORD_TAKEDOWN = 2
RECORD_REGISTER = 3
RECORD_EPOCH = 4

#: Snapshot file framing.  Version 2 adds the leadership epoch after the
#: trusted nonce; version-1 images (pre-supervision) still decode with
#: ``epoch == 0``.
SNAPSHOT_MAGIC = b"RSNP"
SNAPSHOT_VERSION = 2
SNAPSHOT_NAME = "snapshot.bin"

#: ``>I length | >I crc32`` record header.
_HEADER = struct.Struct(">II")


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------


def encode_report_record(
    app_name: str, report: DetectionReport, trusted: bool
) -> bytes:
    """Journal payload for one accepted report."""
    return b"".join(
        (
            struct.pack(">BB", RECORD_REPORT, 1 if trusted else 0),
            _pack_str(app_name),
            canonical_bytes(report),
        )
    )


def encode_takedown_record(app_name: str, key_hex: str, ts: float) -> bytes:
    """Journal payload for one takedown transition."""
    return b"".join(
        (
            struct.pack(">B", RECORD_TAKEDOWN),
            _pack_str(app_name),
            _pack_str(key_hex),
            struct.pack(">d", ts),
        )
    )


def encode_register_record(app_name: str, original_key_hex: str) -> bytes:
    """Journal payload for one app registration."""
    return b"".join(
        (
            struct.pack(">B", RECORD_REGISTER),
            _pack_str(app_name),
            _pack_str(original_key_hex),
        )
    )


def encode_epoch_record(epoch: int) -> bytes:
    """Journal payload for one leadership-epoch bump (meta WAL)."""
    return struct.pack(">BQ", RECORD_EPOCH, epoch & 0xFFFFFFFFFFFFFFFF)


def decode_record(payload: bytes) -> Tuple:
    """Inverse of the ``encode_*_record`` family.

    Returns one of ``("report", app, report, trusted)``,
    ``("takedown", app, key, ts)``, ``("register", app, key)``,
    ``("epoch", epoch)``.
    """
    if not payload:
        raise WireError("empty WAL record")
    kind = payload[0]
    if kind == RECORD_REPORT:
        if len(payload) < 2:
            raise WireError("truncated WAL report record")
        trusted = bool(payload[1])
        app_name, offset = _unpack_str(payload, 2)
        return ("report", app_name, _decode_body(payload[offset:]), trusted)
    if kind == RECORD_TAKEDOWN:
        app_name, offset = _unpack_str(payload, 1)
        key_hex, offset = _unpack_str(payload, offset)
        if offset + 8 != len(payload):
            raise WireError("malformed WAL takedown record")
        (ts,) = struct.unpack_from(">d", payload, offset)
        return ("takedown", app_name, key_hex, ts)
    if kind == RECORD_REGISTER:
        app_name, offset = _unpack_str(payload, 1)
        key_hex, offset = _unpack_str(payload, offset)
        if offset != len(payload):
            raise WireError("malformed WAL register record")
        return ("register", app_name, key_hex)
    if kind == RECORD_EPOCH:
        if len(payload) != 9:
            raise WireError("malformed WAL epoch record")
        (epoch,) = struct.unpack_from(">Q", payload, 1)
        return ("epoch", epoch)
    raise WireError(f"unknown WAL record type {kind}")


def decode_report_body(body: bytes) -> DetectionReport:
    """Decode a canonical report body (snapshot queue entries)."""
    return _decode_body(body)


# ---------------------------------------------------------------------------
# Snapshot codec
# ---------------------------------------------------------------------------
#
# The snapshot payload is a plain nested structure the server produces
# (``ReportServer._snapshot_state``) and consumes
# (``ReportServer._restore_state``)::
#
#     {"clock": float, "trusted_nonce": int, "apps": [
#         {"name": str, "key": str,
#          "takedown_key": Optional[str], "takedown_ts": Optional[float],
#          "shards": [
#              {"nonces": [(device, nonce), ...],
#               "queue": [canonical report bytes, ...],
#               "windows": [(key, [(ts, device), ...]), ...]}]}]}


def encode_snapshot(state: dict) -> bytes:
    """Deterministic binary serialization of the durable server state."""
    parts: List[bytes] = [
        struct.pack(">B", SNAPSHOT_VERSION),
        struct.pack(">d", state["clock"]),
        struct.pack(">Q", state["trusted_nonce"]),
        struct.pack(">Q", state.get("epoch", 0)),
        struct.pack(">H", len(state["apps"])),
    ]
    for app in state["apps"]:
        parts.append(_pack_str(app["name"]))
        parts.append(_pack_str(app["key"]))
        if app["takedown_key"] is None:
            parts.append(struct.pack(">B", 0))
        else:
            parts.append(struct.pack(">B", 1))
            parts.append(_pack_str(app["takedown_key"]))
            parts.append(struct.pack(">d", app["takedown_ts"] or 0.0))
        parts.append(struct.pack(">H", len(app["shards"])))
        for shard in app["shards"]:
            parts.append(struct.pack(">I", len(shard["nonces"])))
            for device, nonce in shard["nonces"]:
                parts.append(_pack_str(device))
                parts.append(struct.pack(">Q", nonce & 0xFFFFFFFFFFFFFFFF))
            parts.append(struct.pack(">I", len(shard["queue"])))
            for body in shard["queue"]:
                parts.append(struct.pack(">I", len(body)))
                parts.append(body)
            parts.append(struct.pack(">H", len(shard["windows"])))
            for key, entries in shard["windows"]:
                parts.append(_pack_str(key))
                parts.append(struct.pack(">I", len(entries)))
                for ts, device in entries:
                    parts.append(struct.pack(">d", ts))
                    parts.append(_pack_str(device))
    return b"".join(parts)


def decode_snapshot(payload: bytes) -> dict:
    """Inverse of :func:`encode_snapshot`; raises :class:`WireError`."""
    try:
        return _decode_snapshot(payload)
    except (struct.error, IndexError) as exc:
        raise WireError(f"malformed snapshot: {exc}") from None


def _decode_snapshot(payload: bytes) -> dict:
    if not payload or payload[0] not in (1, SNAPSHOT_VERSION):
        raise WireError("unsupported snapshot version")
    version = payload[0]
    offset = 1
    (clock,) = struct.unpack_from(">d", payload, offset)
    offset += 8
    (trusted_nonce,) = struct.unpack_from(">Q", payload, offset)
    offset += 8
    epoch = 0
    if version >= 2:
        (epoch,) = struct.unpack_from(">Q", payload, offset)
        offset += 8
    (napps,) = struct.unpack_from(">H", payload, offset)
    offset += 2
    apps = []
    for _ in range(napps):
        name, offset = _unpack_str(payload, offset)
        key, offset = _unpack_str(payload, offset)
        has_takedown = payload[offset]
        offset += 1
        takedown_key: Optional[str] = None
        takedown_ts: Optional[float] = None
        if has_takedown:
            takedown_key, offset = _unpack_str(payload, offset)
            (takedown_ts,) = struct.unpack_from(">d", payload, offset)
            offset += 8
        (nshards,) = struct.unpack_from(">H", payload, offset)
        offset += 2
        shards = []
        for _ in range(nshards):
            (n_nonces,) = struct.unpack_from(">I", payload, offset)
            offset += 4
            nonces = []
            for _ in range(n_nonces):
                device, offset = _unpack_str(payload, offset)
                (nonce,) = struct.unpack_from(">Q", payload, offset)
                offset += 8
                nonces.append((device, nonce))
            (n_queue,) = struct.unpack_from(">I", payload, offset)
            offset += 4
            queue = []
            for _ in range(n_queue):
                (body_len,) = struct.unpack_from(">I", payload, offset)
                offset += 4
                body = payload[offset : offset + body_len]
                if len(body) != body_len:
                    raise WireError("truncated snapshot queue entry")
                offset += body_len
                queue.append(body)
            (n_windows,) = struct.unpack_from(">H", payload, offset)
            offset += 2
            windows = []
            for _ in range(n_windows):
                wkey, offset = _unpack_str(payload, offset)
                (n_entries,) = struct.unpack_from(">I", payload, offset)
                offset += 4
                entries = []
                for _ in range(n_entries):
                    (ts,) = struct.unpack_from(">d", payload, offset)
                    offset += 8
                    device, offset = _unpack_str(payload, offset)
                    entries.append((ts, device))
                windows.append((wkey, entries))
            shards.append({"nonces": nonces, "queue": queue, "windows": windows})
        apps.append(
            {
                "name": name,
                "key": key,
                "takedown_key": takedown_key,
                "takedown_ts": takedown_ts,
                "shards": shards,
            }
        )
    if offset != len(payload):
        raise WireError("trailing bytes after snapshot payload")
    return {
        "clock": clock,
        "trusted_nonce": trusted_nonce,
        "epoch": epoch,
        "apps": apps,
    }


# ---------------------------------------------------------------------------
# The durability log
# ---------------------------------------------------------------------------


class _WalFile:
    """One append-only, unbuffered WAL file.

    Unbuffered so that every acked append is visible to the OS -- a
    process kill (the chaos crash model) loses nothing that was acked.
    ``fsync`` is the separate, optional power-loss barrier.
    """

    __slots__ = ("path", "_handle")

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "ab", buffering=0)

    def append(self, payload: bytes) -> bytes:
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        # The fault point may corrupt the record as written (bit rot on
        # the way to flash) or raise (write failure).  The *clean* record
        # is returned for observers (replication ships what the server
        # journaled, not what local bit rot mangled).
        self._handle.write(fault_point("wal.append", record))
        return record

    def sync(self) -> None:
        fault_point("wal.fsync")
        os.fsync(self._handle.fileno())

    def truncate(self) -> None:
        os.ftruncate(self._handle.fileno(), 0)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class DurabilityLog:
    """Owns the data directory of one :class:`ReportServer`.

    Layout: ``wal-meta.log`` (registrations, takedowns),
    ``wal-000.log .. wal-NNN.log`` (accepted reports, one per shard),
    ``snapshot.bin`` (last verified compaction).
    """

    def __init__(
        self,
        data_dir: str,
        shard_count: int,
        metrics: MetricsRegistry,
        *,
        snapshot_every: int = 1024,
        fsync: bool = False,
    ) -> None:
        if shard_count < 1:
            raise DurabilityError("need at least one shard")
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.shard_count = shard_count
        self.metrics = metrics
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self._appends_since_snapshot = 0
        self._meta: Optional[_WalFile] = None
        self._shards: List[Optional[_WalFile]] = [None] * shard_count
        self._observers: List = []

    def add_observer(self, observer) -> None:
        """Subscribe to durable events (the WAL is the replication log).

        ``observer(event, index, payload)`` fires *after* the bytes are
        durable: ``("record", shard_index_or_-1_for_meta, record)`` for
        every successful append, ``("snapshot", -1, file_image)`` after
        every successful compaction.
        """
        self._observers.append(observer)

    # -- paths --------------------------------------------------------------

    def _meta_path(self) -> str:
        return os.path.join(self.data_dir, "wal-meta.log")

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.data_dir, f"wal-{index:03d}.log")

    def snapshot_path(self) -> str:
        return os.path.join(self.data_dir, SNAPSHOT_NAME)

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> None:
        """Open (and create) every WAL for append."""
        if self._meta is None:
            self._meta = _WalFile(self._meta_path())
        for index in range(self.shard_count):
            if self._shards[index] is None:
                self._shards[index] = _WalFile(self._shard_path(index))

    def close(self) -> None:
        if self._meta is not None:
            self._meta.close()
            self._meta = None
        for index, wal in enumerate(self._shards):
            if wal is not None:
                wal.close()
                self._shards[index] = None

    # -- appends ------------------------------------------------------------

    def append_report(
        self, app_name: str, report: DetectionReport, shard_index: int,
        trusted: bool = False,
    ) -> bool:
        wal = self._shards[shard_index]
        return self._append(
            wal, encode_report_record(app_name, report, trusted), shard_index
        )

    def append_takedown(self, app_name: str, key_hex: str, ts: float) -> bool:
        return self._append(
            self._meta, encode_takedown_record(app_name, key_hex, ts), -1
        )

    def append_register(self, app_name: str, original_key_hex: str) -> bool:
        return self._append(
            self._meta, encode_register_record(app_name, original_key_hex), -1
        )

    def append_epoch(self, epoch: int) -> bool:
        return self._append(self._meta, encode_epoch_record(epoch), -1)

    def _append(
        self, wal: Optional[_WalFile], payload: bytes, index: int = -1
    ) -> bool:
        if wal is None:
            raise DurabilityError("durability log is not open")
        try:
            record = wal.append(payload)
            if self.fsync:
                wal.sync()
        except (OSError, ReproError):
            self.metrics.counter("wal.failures").inc()
            return False
        self.metrics.counter("wal.appends").inc()
        self._appends_since_snapshot += 1
        for observer in self._observers:
            observer("record", index, record)
        return True

    # -- compaction ---------------------------------------------------------

    def maybe_compact(self, server) -> bool:
        if self._appends_since_snapshot < self.snapshot_every:
            return False
        return self.compact(server)

    def compact(self, server) -> bool:
        """Snapshot the server's durable state and truncate the WALs.

        The temp file is re-read and crc-verified before the atomic
        rename; any corruption or failure aborts and keeps the WAL, so
        a bad compaction can never lose journaled records.
        """
        payload = encode_snapshot(server._snapshot_state())
        crc = zlib.crc32(payload)
        tmp_path = self.snapshot_path() + ".tmp"
        try:
            written = fault_point("snapshot.write", payload)
            with open(tmp_path, "wb") as handle:
                handle.write(SNAPSHOT_MAGIC)
                handle.write(written)
                handle.write(struct.pack(">I", crc))
                handle.flush()
                os.fsync(handle.fileno())
            if self._read_snapshot_payload(tmp_path) is None:
                raise DurabilityError("snapshot failed verification")
        except (OSError, ReproError):
            self.metrics.counter("snapshot.failures").inc()
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        os.replace(tmp_path, self.snapshot_path())
        if self._meta is not None:
            self._meta.truncate()
        for wal in self._shards:
            if wal is not None:
                wal.truncate()
        self._appends_since_snapshot = 0
        self.metrics.counter("snapshot.compactions").inc()
        # Followers mirror the compaction: a full snapshot file image
        # supersedes (and truncates) their shipped WALs.
        image = SNAPSHOT_MAGIC + payload + struct.pack(">I", crc)
        for observer in self._observers:
            observer("snapshot", -1, image)
        return True

    # -- recovery -----------------------------------------------------------

    def load_snapshot(self) -> Optional[dict]:
        """Decode the last snapshot, or None (missing / corrupt)."""
        payload = self._read_snapshot_payload(self.snapshot_path())
        if payload is None:
            return None
        try:
            state = decode_snapshot(payload)
        except WireError:
            self.metrics.counter("recovery.corrupt_snapshots").inc()
            return None
        self.metrics.counter("snapshot.loads").inc()
        return state

    def _read_snapshot_payload(self, path: str) -> Optional[bytes]:
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        if len(blob) < 9 or blob[:4] != SNAPSHOT_MAGIC:
            self.metrics.counter("recovery.corrupt_snapshots").inc()
            return None
        payload, (crc,) = blob[4:-4], struct.unpack(">I", blob[-4:])
        if zlib.crc32(payload) != crc:
            self.metrics.counter("recovery.corrupt_snapshots").inc()
            return None
        return payload

    def replay(self) -> Iterator[Tuple]:
        """Yield every decoded record: meta WAL first, then each shard.

        A torn or bit-flipped record ends that file's replay, is
        counted in ``recovery.torn_records``, and the file is truncated
        back to its last intact record so future appends stay parseable.
        """
        paths = [self._meta_path()]
        paths.extend(self._shard_path(i) for i in range(self.shard_count))
        for path in paths:
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                continue
            offset = 0
            while offset + _HEADER.size <= len(data):
                length, crc = _HEADER.unpack_from(data, offset)
                end = offset + _HEADER.size + length
                if end > len(data):
                    break  # torn tail: record outruns the file
                payload = data[offset + _HEADER.size : end]
                if zlib.crc32(payload) != crc:
                    break  # bit rot (or a torn header mid-file)
                try:
                    record = decode_record(payload)
                except WireError:
                    self.metrics.counter("recovery.skipped_records").inc()
                else:
                    self.metrics.counter("wal.replayed").inc()
                    yield record
                offset = end
            if offset < len(data):
                self.metrics.counter("recovery.torn_records").inc()
                with open(path, "r+b") as handle:
                    handle.truncate(offset)
