"""The decentralized detection-report pipeline (developer backend).

The paper's resilience argument is decentralized: per-device bomb
detections only matter once many user devices report the foreign
signing key back to the developer and the market acts (Sections 1,
4.2).  This package is that other half, at production shape:

``wire``     versioned, RSA-signed report envelopes (binary + JSON
             codecs, nonce + timestamp replay protection) and the
             structured text channel payload bytecode emits
``client``   device-side sender: retry, exponential backoff + jitter,
             bounded offline spool
``server``   sharded ingestion service: signature checks, dedup,
             sliding-window takedown policy, bounded queues with
             explicit backpressure accounting
``durability`` per-shard write-ahead log + snapshot compaction, so
             ``ReportServer.recover(data_dir)`` rebuilds verdict state
             after a crash (torn-tail and bit-flip tolerant replay)
``fleet``    million-device load driver in O(shards) memory, calibrated
             from real interpreter play sessions (in-process or over
             real TCP sockets via ``transport="tcp"``)
``net``      the networked face: asyncio TCP ingest service speaking
             the DRPT frames over sockets, device-side ``TcpTransport``,
             and leader->follower replication by WAL shipping with
             snapshot+replay failover
Metrics (counters / gauges / fixed-bucket histograms) live in the
repo-wide :mod:`repro.metrics`; the old ``repro.reporting.metrics``
path survives as a deprecated re-export.

``repro.userside.aggregation`` and ``repro.userside.market`` sit on top
of this package; the CLI surface is ``repro serve-reports`` and
``repro fleet``.
"""

from repro.reporting.client import ReportClient, Transport
from repro.reporting.durability import DurabilityLog
from repro.reporting.fleet import FleetConfig, FleetResult, OutcomeModel, run_fleet
from repro.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.reporting.server import ReportServer, SubmitStatus, TakedownPolicy
from repro.reporting.verdicts import AggregatedVerdict
from repro.reporting.wire import (
    WIRE_VERSION,
    DetectionReport,
    SignedReport,
    decode_report,
    encode_report,
    format_report_text,
    parse_report_text,
    report_from_json,
    report_from_text,
    report_to_json,
    sign_report,
)

# After the server/durability imports above: the net package layers on
# top of them (service wraps server, replication ships durability's WAL).
from repro.reporting.net import (
    FrameReader,
    IngestService,
    ReplicaFollower,
    ServiceHandle,
    TcpTransport,
)

__all__ = [
    "AggregatedVerdict",
    "Counter",
    "DetectionReport",
    "DurabilityLog",
    "FleetConfig",
    "FleetResult",
    "FrameReader",
    "Gauge",
    "Histogram",
    "IngestService",
    "MetricsRegistry",
    "OutcomeModel",
    "ReplicaFollower",
    "ReportClient",
    "ReportServer",
    "ServiceHandle",
    "SignedReport",
    "TcpTransport",
    "SubmitStatus",
    "TakedownPolicy",
    "Transport",
    "WIRE_VERSION",
    "decode_report",
    "encode_report",
    "format_report_text",
    "parse_report_text",
    "report_from_json",
    "report_from_text",
    "report_to_json",
    "run_fleet",
    "sign_report",
]
