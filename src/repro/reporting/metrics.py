"""Deprecated alias: the metrics registry moved to :mod:`repro.metrics`.

The counters / gauges / histograms started life report-pipeline-local
but are now shared repo-wide (the batch-protection pipeline uses the
same registry), so the module was promoted out of ``repro.reporting``.
This shim keeps old imports working; new code should import
``repro.metrics`` directly.
"""

from __future__ import annotations

import warnings

from repro.metrics import (  # noqa: F401  (re-exports)
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

warnings.warn(
    "repro.reporting.metrics moved to repro.metrics; this alias will be "
    "removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)
