"""Versioned, signed wire format for detection reports.

The paper's decentralized argument (Sections 1, 4.2) rests on user
devices sending the foreign signing key home.  On the wire that is a
:class:`DetectionReport` -- app, bomb, device, the observed key
fingerprint, a timestamp and a random nonce -- carried inside a
:class:`SignedReport` envelope:

* the report body is serialized canonically and **RSA-signed** with the
  device's attestation key (:mod:`repro.crypto.rsa`), so a pirate
  cannot forge a flood of reports naming the *developer's* key;
* the attestation **public key travels with the report** (self-
  contained verification, batch attestation keys may be shared across
  devices the way real-world device attestation works), so the
  ingestion service needs no per-device registry -- O(1) state per
  report, which is what lets the fleet driver scale to millions of
  devices;
* the **nonce** deduplicates client retries and the **timestamp** ages
  out replays (the server rejects reports older than its freshness
  window).

Two codecs are provided: a compact binary framing (magic ``DRPT``) and
a JSON object (for ``repro serve-reports`` file/stdin ingestion).

The module also owns the *text channel* bridging the in-VM REPORT
response to the wire: payload bytecode emits a structured
``repackaged:v1:app=..:bomb=..:key=..`` string through
``android.net.report``; :func:`parse_report_text` recovers the fields
from that -- or, tolerantly, from the legacy free-form strings older
builds emitted.
"""

from __future__ import annotations

import json
import re
import struct
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.crypto.rsa import RSAKeyPair, RSAPublicKey
from repro.errors import CryptoError, WireError

#: Current wire version.  Decoders accept only versions they know.
WIRE_VERSION = 1

#: Magic prefix of the binary framing.
WIRE_MAGIC = b"DRPT"

#: Structured text-channel prefix emitted by the REPORT response.
TEXT_PREFIX = "repackaged:v1:"


@dataclass(frozen=True)
class DetectionReport:
    """One device's account of one bomb detection."""

    app_name: str
    bomb_id: str
    device_id: str
    observed_key_hex: str
    detection_method: str = "public_key"
    timestamp: float = 0.0
    nonce: int = 0
    version: int = WIRE_VERSION

    def with_nonce(self, nonce: int) -> "DetectionReport":
        return replace(self, nonce=nonce)


def _pack_str(value: str) -> bytes:
    encoded = value.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise WireError("report field too long")
    return struct.pack(">H", len(encoded)) + encoded


def _unpack_str(blob: bytes, offset: int):
    if offset + 2 > len(blob):
        raise WireError("truncated report field")
    (length,) = struct.unpack_from(">H", blob, offset)
    offset += 2
    if offset + length > len(blob):
        raise WireError("truncated report field")
    return blob[offset : offset + length].decode("utf-8"), offset + length


def canonical_bytes(report: DetectionReport) -> bytes:
    """Deterministic serialization of the report body (what is signed)."""
    return b"".join(
        (
            struct.pack(">B", report.version),
            _pack_str(report.app_name),
            _pack_str(report.bomb_id),
            _pack_str(report.device_id),
            _pack_str(report.observed_key_hex),
            _pack_str(report.detection_method),
            struct.pack(">d", report.timestamp),
            struct.pack(">Q", report.nonce & 0xFFFFFFFFFFFFFFFF),
        )
    )


@dataclass(frozen=True)
class SignedReport:
    """Report body + attestation key + RSA signature over the body."""

    report: DetectionReport
    attestation_key: RSAPublicKey
    signature: int

    def verify(self) -> bool:
        """True iff the signature matches the canonical body."""
        try:
            return self.attestation_key.verify(
                canonical_bytes(self.report), self.signature
            )
        except (CryptoError, WireError):
            return False


def sign_report(report: DetectionReport, key: RSAKeyPair) -> SignedReport:
    """Sign the canonical body with the device attestation key."""
    return SignedReport(
        report=report,
        attestation_key=key.public,
        signature=key.sign(canonical_bytes(report)),
    )


# ---------------------------------------------------------------------------
# Binary codec
# ---------------------------------------------------------------------------


def encode_report(signed: SignedReport) -> bytes:
    """Binary framing: magic, body, key blob, signature."""
    body = canonical_bytes(signed.report)
    key_blob = signed.attestation_key.to_bytes()
    sig_bytes = signed.signature.to_bytes(
        (signed.signature.bit_length() + 7) // 8 or 1, "big"
    )
    return b"".join(
        (
            WIRE_MAGIC,
            struct.pack(">I", len(body)),
            body,
            struct.pack(">H", len(key_blob)),
            key_blob,
            struct.pack(">H", len(sig_bytes)),
            sig_bytes,
        )
    )


def decode_report(blob: bytes) -> SignedReport:
    """Inverse of :func:`encode_report`; raises :class:`WireError`."""
    if not isinstance(blob, (bytes, bytearray)) or blob[:4] != WIRE_MAGIC:
        raise WireError("not a detection-report frame")
    blob = bytes(blob)
    offset = 4
    if offset + 4 > len(blob):
        raise WireError("truncated report frame")
    (body_len,) = struct.unpack_from(">I", blob, offset)
    offset += 4
    body = blob[offset : offset + body_len]
    if len(body) != body_len:
        raise WireError("truncated report body")
    report = _decode_body(body)
    offset += body_len
    if offset + 2 > len(blob):
        raise WireError("missing attestation key")
    (key_len,) = struct.unpack_from(">H", blob, offset)
    offset += 2
    try:
        key = RSAPublicKey.from_bytes(blob[offset : offset + key_len])
    except CryptoError as exc:
        raise WireError(f"bad attestation key: {exc}") from None
    offset += key_len
    if offset + 2 > len(blob):
        raise WireError("missing signature")
    (sig_len,) = struct.unpack_from(">H", blob, offset)
    offset += 2
    sig_bytes = blob[offset : offset + sig_len]
    if len(sig_bytes) != sig_len:
        raise WireError("truncated signature")
    return SignedReport(
        report=report,
        attestation_key=key,
        signature=int.from_bytes(sig_bytes, "big"),
    )


def _decode_body(body: bytes) -> DetectionReport:
    if not body:
        raise WireError("empty report body")
    version = body[0]
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version}")
    offset = 1
    app_name, offset = _unpack_str(body, offset)
    bomb_id, offset = _unpack_str(body, offset)
    device_id, offset = _unpack_str(body, offset)
    observed_key_hex, offset = _unpack_str(body, offset)
    detection_method, offset = _unpack_str(body, offset)
    if offset + 16 != len(body):
        raise WireError("malformed report body")
    (timestamp,) = struct.unpack_from(">d", body, offset)
    (nonce,) = struct.unpack_from(">Q", body, offset + 8)
    return DetectionReport(
        app_name=app_name,
        bomb_id=bomb_id,
        device_id=device_id,
        observed_key_hex=observed_key_hex,
        detection_method=detection_method,
        timestamp=timestamp,
        nonce=nonce,
        version=version,
    )


# ---------------------------------------------------------------------------
# JSON codec
# ---------------------------------------------------------------------------


def report_to_json(signed: SignedReport) -> str:
    """JSON object form (one line; used by ``repro serve-reports``)."""
    return json.dumps(
        {
            "version": signed.report.version,
            "app": signed.report.app_name,
            "bomb": signed.report.bomb_id,
            "device": signed.report.device_id,
            "key": signed.report.observed_key_hex,
            "method": signed.report.detection_method,
            "timestamp": signed.report.timestamp,
            "nonce": signed.report.nonce,
            "attestation_key": signed.attestation_key.to_bytes().hex(),
            "signature": hex(signed.signature),
        },
        sort_keys=True,
    )


def report_from_json(line: str) -> SignedReport:
    """Inverse of :func:`report_to_json`; raises :class:`WireError`."""
    try:
        obj = json.loads(line)
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad report JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise WireError("report JSON must be an object")
    try:
        report = DetectionReport(
            app_name=str(obj["app"]),
            bomb_id=str(obj["bomb"]),
            device_id=str(obj["device"]),
            observed_key_hex=str(obj["key"]),
            detection_method=str(obj.get("method", "public_key")),
            timestamp=float(obj.get("timestamp", 0.0)),
            nonce=int(obj.get("nonce", 0)),
            version=int(obj.get("version", WIRE_VERSION)),
        )
        key = RSAPublicKey.from_bytes(bytes.fromhex(obj["attestation_key"]))
        signature = int(str(obj["signature"]), 16)
    except (KeyError, ValueError, CryptoError) as exc:
        raise WireError(f"bad report JSON: {exc}") from None
    if report.version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {report.version}")
    return SignedReport(report=report, attestation_key=key, signature=signature)


# ---------------------------------------------------------------------------
# Text channel (the in-VM `android.net.report` string)
# ---------------------------------------------------------------------------

#: Legacy free-form extraction: a run of hex immediately following
#: ``key=``.  Key fingerprints are 40 hex chars (SHA-1); anything
#: shorter in free text (e.g. "key=deadbeef") is not mistaken for one.
_LEGACY_KEY_RE = re.compile(r"key=([0-9a-fA-F]{16,})")


def format_report_text(app_name: str, bomb_id: str) -> str:
    """Structured text prefix emitted by the REPORT response bytecode.

    The runtime key fingerprint is concatenated at the end by the
    payload (it is only known at detection time).
    """
    return f"{TEXT_PREFIX}app={app_name}:bomb={bomb_id}:key="


def parse_report_text(text: str) -> Dict[str, str]:
    """Recover structured fields from a text-channel report.

    Structured ``repackaged:v1:`` messages are split into ``field=value``
    segments.  Anything else goes through the tolerant legacy path,
    which extracts the *last plausible fingerprint* following ``key=``
    -- unlike the old ``rsplit("key=", 1)``, free text mentioning
    ``key=`` does not derail it.
    """
    fields: Dict[str, str] = {}
    if text.startswith(TEXT_PREFIX):
        fields["version"] = "1"
        for segment in text[len(TEXT_PREFIX) :].split(":"):
            name, sep, value = segment.partition("=")
            if sep:
                fields[name] = value
        key = fields.get("key", "")
        if not _is_fingerprint(key):
            fields.pop("key", None)
        return fields
    # Legacy: "repackaged:App:bomb:key=<hex>" and arbitrary free text.
    matches = [m for m in _LEGACY_KEY_RE.findall(text) if _is_fingerprint(m)]
    if matches:
        fields["key"] = matches[-1].lower()
    parts = text.split(":")
    if len(parts) >= 4 and parts[0] == "repackaged":
        fields.setdefault("app", parts[1])
        fields.setdefault("bomb", parts[2])
    return fields


def _is_fingerprint(value: str) -> bool:
    """A plausible SHA-1 key fingerprint: exactly 40 hex chars."""
    return len(value) == 40 and all(c in "0123456789abcdefABCDEF" for c in value)


def report_from_text(
    text: str,
    device_id: str,
    timestamp: float = 0.0,
    nonce: int = 0,
    detection_method: str = "public_key",
) -> Optional[DetectionReport]:
    """Build a wire report from the in-VM text channel, if it names a key."""
    fields = parse_report_text(text)
    key = fields.get("key")
    if not key:
        return None
    return DetectionReport(
        app_name=fields.get("app", ""),
        bomb_id=fields.get("bomb", ""),
        device_id=device_id,
        observed_key_hex=key.lower(),
        detection_method=detection_method,
        timestamp=timestamp,
        nonce=nonce,
    )
