"""Developer-side ingestion service for detection reports.

``ReportServer`` is the backend the paper implies but never builds: the
place where "thousands of user devices" (Section 4.2) deliver evidence
that a repackaged copy is circulating.  Design constraints, in order:

* **Bounded state.**  Millions of devices may report; the server must
  hold memory proportional to its *shard count*, never its device
  count.  Every structure -- ingest queues, nonce dedup windows,
  per-key sliding windows, the tracked-key set itself -- has a hard
  cap with explicit eviction/drop accounting.
* **Sharded aggregation.**  Reports are routed to one of N shards by a
  stable hash of the device id, so each device's state lives in exactly
  one shard and per-shard distinct-device counts sum to the global
  count without cross-shard coordination.
* **Adversarial inputs.**  Signatures are verified (a pirate cannot
  manufacture evidence against the *developer's* key), stale reports
  are rejected as replays, and client retries are deduplicated on
  ``(device, nonce)``.
* **Backpressure, not collapse.**  ``submit`` validates and enqueues;
  ``process`` drains queues into the takedown policy.  A full queue
  drops the report and says so (``SubmitStatus.DROPPED`` plus a
  counter) instead of growing without bound.
* **Durable, optionally.**  With ``data_dir`` set, accepted reports and
  takedown transitions are journaled to a per-shard write-ahead log
  *before* they mutate shard state, snapshots compact the log, and
  :meth:`ReportServer.recover` rebuilds the verdict state after a crash
  (:mod:`repro.reporting.durability`).  A report is only ever acked
  ``ACCEPTED`` once it is journaled; a failed journal write answers
  ``DROPPED`` so the client retries.

The takedown decision is a **sliding-window policy**: a takedown needs
``distinct_devices`` *different* devices naming the same foreign key
within ``window_seconds``.  That replaces the seed's bare counter
threshold -- a trickle of ancient reports no longer triggers takedowns,
and one noisy device cannot vote more than once.
"""

from __future__ import annotations

import enum
import math
import os
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import DurabilityError, ReportingError, WireError
from repro.metrics import MetricsRegistry
from repro.reporting.wire import (
    DetectionReport,
    SignedReport,
    canonical_bytes,
    decode_report,
    report_from_json,
)
from repro.reporting.verdicts import AggregatedVerdict


class SubmitStatus(enum.Enum):
    """Outcome of one ``submit`` call, mirrored in the metrics."""

    ACCEPTED = "accepted"
    DUPLICATE = "duplicate"          # (device, nonce) already seen
    REPLAYED = "replayed"            # older than the freshness window
    BAD_SIGNATURE = "bad_signature"  # forged / corrupted envelope
    MALFORMED = "malformed"          # frame does not decode
    UNKNOWN_APP = "unknown_app"      # app not registered here
    DROPPED = "dropped"              # shard queue full (backpressure)
    NOT_LEADER = "not_leader"        # fenced stale leader; follow redirect


@dataclass(frozen=True)
class TakedownPolicy:
    """Sliding-window takedown rule.

    ``distinct_devices`` different devices must name the same foreign
    key within ``window_seconds``.  The ``max_tracked_*`` caps bound
    per-shard memory; they are capacity limits, not semantics.
    """

    distinct_devices: int = 3
    window_seconds: float = 3600.0
    max_tracked_devices: int = 512   # window entries per key per shard
    max_tracked_keys: int = 64       # foreign keys tracked per shard


class _KeyWindow:
    """Sliding window of (timestamp, device) sightings of one key."""

    __slots__ = ("entries", "device_counts", "first_ts", "last_ts")

    def __init__(self) -> None:
        self.entries: Deque[Tuple[float, str]] = deque()
        self.device_counts: Dict[str, int] = {}
        self.first_ts = math.inf
        self.last_ts = -math.inf

    def add(self, ts: float, device_id: str, cap: int) -> None:
        if len(self.entries) >= cap:
            self._evict_oldest()
            self._recompute_bounds()
        self.entries.append((ts, device_id))
        self.device_counts[device_id] = self.device_counts.get(device_id, 0) + 1
        if ts < self.first_ts:
            self.first_ts = ts
        if ts > self.last_ts:
            self.last_ts = ts

    def prune(self, now: float, window_seconds: float) -> None:
        if math.isinf(window_seconds):
            return
        horizon = now - window_seconds
        dropped = False
        while self.entries and self.entries[0][0] < horizon:
            self._evict_oldest()
            dropped = True
        if dropped:
            self._recompute_bounds()

    def _evict_oldest(self) -> None:
        _, device_id = self.entries.popleft()
        remaining = self.device_counts[device_id] - 1
        if remaining:
            self.device_counts[device_id] = remaining
        else:
            del self.device_counts[device_id]

    def _recompute_bounds(self) -> None:
        # first/last must describe the *surviving* window, not the
        # all-time extremes -- takedown latency is measured from
        # first_ts, and an evicted ancient sighting must not stretch it.
        if self.entries:
            self.first_ts = min(ts for ts, _ in self.entries)
            self.last_ts = max(ts for ts, _ in self.entries)
        else:
            self.first_ts = math.inf
            self.last_ts = -math.inf

    def distinct_devices(self) -> int:
        return len(self.device_counts)

    def size(self) -> int:
        return len(self.entries)


class _Shard:
    """One shard: ingest queue, dedup window, per-key sliding windows."""

    __slots__ = ("queue", "nonce_order", "nonce_set", "windows")

    def __init__(self) -> None:
        self.queue: Deque[DetectionReport] = deque()
        self.nonce_order: Deque[Tuple[str, int]] = deque()
        self.nonce_set: set = set()
        # key -> window, in last-touched order for bounded eviction.
        self.windows: "OrderedDict[str, _KeyWindow]" = OrderedDict()

    def seen(self, device_id: str, nonce: int) -> bool:
        return (device_id, nonce) in self.nonce_set

    def remember(self, device_id: str, nonce: int, cap: int) -> None:
        token = (device_id, nonce)
        if len(self.nonce_order) >= cap:
            self.nonce_set.discard(self.nonce_order.popleft())
        self.nonce_order.append(token)
        self.nonce_set.add(token)

    def window_for(self, key: str, cap_keys: int) -> Tuple[_KeyWindow, bool]:
        """(window, evicted_one) -- creates and bounds the key set."""
        window = self.windows.get(key)
        evicted = False
        if window is None:
            if len(self.windows) >= cap_keys:
                self.windows.popitem(last=False)
                evicted = True
            window = self.windows[key] = _KeyWindow()
        else:
            self.windows.move_to_end(key)
        return window, evicted

    def tracked_size(self) -> int:
        return (
            len(self.queue)
            + len(self.nonce_set)
            + len(self.windows)
            + sum(w.size() for w in self.windows.values())
        )


class _AppState:
    """Per-registered-app ingestion state."""

    __slots__ = ("name", "original_key_hex", "shards", "takedown_key", "takedown_ts")

    def __init__(self, name: str, original_key_hex: str, shard_count: int) -> None:
        self.name = name
        self.original_key_hex = original_key_hex.lower()
        self.shards = [_Shard() for _ in range(shard_count)]
        self.takedown_key: Optional[str] = None
        self.takedown_ts: Optional[float] = None


class ReportServer:
    """Sharded, bounded ingestion service for signed detection reports."""

    def __init__(
        self,
        shards: int = 8,
        queue_capacity: int = 4096,
        dedup_window: int = 4096,
        max_report_age: float = 900.0,
        policy: Optional[TakedownPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        data_dir: Optional[str] = None,
        snapshot_every: int = 1024,
        fsync: bool = False,
    ) -> None:
        if shards < 1:
            raise ReportingError("need at least one shard")
        self.shard_count = shards
        self.queue_capacity = queue_capacity
        self.dedup_window = dedup_window
        self.max_report_age = max_report_age
        self.policy = policy or TakedownPolicy()
        self.metrics = metrics or MetricsRegistry()
        self.clock = 0.0
        self._apps: Dict[str, _AppState] = {}
        self._trusted_nonce = 0
        #: Leadership generation.  Monotonic across crashes (journaled to
        #: the meta WAL, carried by snapshots) -- a promoted follower bumps
        #: it so a fenced stale leader is recognisable by its lower epoch.
        self.epoch = 0
        self._durability = None
        if data_dir is not None:
            from repro.reporting.durability import DurabilityLog

            self._durability = DurabilityLog(
                data_dir, shards, self.metrics,
                snapshot_every=snapshot_every, fsync=fsync,
            )
            self._recover_existing()
            self._durability.open()

    @classmethod
    def recover(cls, data_dir: str, **kwargs) -> "ReportServer":
        """Rebuild a server from its durable state after a crash.

        Loads the last verified snapshot, replays the WALs (tolerating a
        torn tail), and reopens the logs for append.  ``kwargs`` must
        match the crashed server's configuration -- in particular
        ``shards``, which the snapshot validates.
        """
        if not os.path.isdir(data_dir):
            raise DurabilityError(f"no durable state at {data_dir!r}")
        return cls(data_dir=data_dir, **kwargs)

    def close(self) -> None:
        """Graceful shutdown: compact into a snapshot and close the logs."""
        if self._durability is not None:
            self._durability.compact(self)
            self._durability.close()

    def crash(self) -> None:
        """Abandon the durable logs with no compaction (kill simulation).

        WAL appends are unbuffered, so everything acked before this call
        survives on disk; anything else is the crash's business.
        """
        if self._durability is not None:
            self._durability.close()

    def bump_epoch(self) -> int:
        """Advance the leadership epoch (journaled before it takes effect).

        Called on promotion: the new leader's epoch strictly exceeds every
        epoch the old leader ever served, so fencing decisions reduce to
        an integer comparison.
        """
        next_epoch = self.epoch + 1
        if self._durability is not None:
            self._durability.append_epoch(next_epoch)
        self.epoch = next_epoch
        return next_epoch

    # -- registration -------------------------------------------------------

    def register_app(self, app_name: str, original_key_hex: str) -> None:
        """Register an app the developer operates this backend for."""
        if app_name in self._apps:
            raise ReportingError(f"app {app_name!r} already registered")
        if self._durability is not None:
            self._durability.append_register(app_name, original_key_hex)
        self._apps[app_name] = _AppState(
            app_name, original_key_hex, self.shard_count
        )

    @property
    def apps(self) -> Iterable[str]:
        return self._apps.keys()

    # -- ingestion ----------------------------------------------------------

    def submit(self, item) -> SubmitStatus:
        """Validate and enqueue one report.

        Accepts a :class:`SignedReport`, binary frame bytes, or a JSON
        line.  Validation order: decode, app lookup, signature,
        freshness, dedup, queue capacity.
        """
        self.metrics.counter("reporting.received").inc()
        if isinstance(item, (bytes, bytearray)):
            try:
                item = decode_report(item)
            except WireError:
                return self._reject("reporting.rejected_malformed", SubmitStatus.MALFORMED)
        elif isinstance(item, str):
            try:
                item = report_from_json(item)
            except WireError:
                return self._reject("reporting.rejected_malformed", SubmitStatus.MALFORMED)
        if not isinstance(item, SignedReport):
            return self._reject("reporting.rejected_malformed", SubmitStatus.MALFORMED)
        app = self._apps.get(item.report.app_name)
        if app is None:
            return self._reject("reporting.unknown_app", SubmitStatus.UNKNOWN_APP)
        if not item.verify():
            return self._reject("reporting.rejected_forged", SubmitStatus.BAD_SIGNATURE)
        return self._admit(app, item.report)

    def ingest_trusted(
        self,
        app_name: str,
        *,
        device_id: str,
        observed_key_hex: str,
        bomb_id: str = "",
        timestamp: Optional[float] = None,
        nonce: Optional[int] = None,
    ) -> SubmitStatus:
        """Legacy channel: ingest an already-authenticated report.

        Used by :class:`repro.userside.aggregation.DetectionAggregator`,
        which fronts the old free-form string protocol where transport
        authentication happened out of band.  Skips signature checks but
        shares dedup, backpressure and the takedown policy.
        """
        # Count before any reject, exactly like ``submit`` -- otherwise
        # rejected trusted reports vanish from the received counter and
        # acceptance-rate math disagrees between the two ingest paths.
        self.metrics.counter("reporting.received").inc()
        app = self._apps.get(app_name)
        if app is None:
            return self._reject("reporting.unknown_app", SubmitStatus.UNKNOWN_APP)
        if nonce is None:
            self._trusted_nonce += 1
            nonce = self._trusted_nonce
        report = DetectionReport(
            app_name=app_name,
            bomb_id=bomb_id,
            device_id=device_id,
            observed_key_hex=observed_key_hex.lower(),
            timestamp=self.clock if timestamp is None else timestamp,
            nonce=nonce,
        )
        return self._admit(app, report, trusted=True)

    def _admit(
        self, app: _AppState, report: DetectionReport, trusted: bool = False
    ) -> SubmitStatus:
        if report.timestamp < self.clock - self.max_report_age:
            return self._reject("reporting.rejected_replayed", SubmitStatus.REPLAYED)
        if report.timestamp > self.clock:
            self.clock = report.timestamp
        shard_index = self._shard_index(report.device_id)
        shard = app.shards[shard_index]
        if shard.seen(report.device_id, report.nonce):
            return self._reject("reporting.duplicates_dropped", SubmitStatus.DUPLICATE)
        if len(shard.queue) >= self.queue_capacity:
            return self._reject("reporting.dropped_backpressure", SubmitStatus.DROPPED)
        if self._durability is not None:
            # Journal before mutating shard state: ACCEPTED means
            # durable.  A failed append answers DROPPED (and records no
            # nonce) so the client's retry is not misread as a duplicate.
            if not self._durability.append_report(
                app.name, report, shard_index, trusted=trusted
            ):
                return self._reject("reporting.wal_failed", SubmitStatus.DROPPED)
        shard.remember(report.device_id, report.nonce, self.dedup_window)
        shard.queue.append(report)
        self.metrics.counter("reporting.accepted").inc()
        self._update_gauges()
        if self._durability is not None:
            self._durability.maybe_compact(self)
        return SubmitStatus.ACCEPTED

    def _reject(self, counter: str, status: SubmitStatus) -> SubmitStatus:
        self.metrics.counter(counter).inc()
        return status

    def _shard_index(self, device_id: str) -> int:
        # zlib.crc32 is stable across processes (str hash is salted).
        return zlib.crc32(device_id.encode("utf-8")) % self.shard_count

    def shard_for(self, device_id: str) -> int:
        """The shard owning ``device_id`` (the TCP acceptor routes by it)."""
        return self._shard_index(device_id)

    # -- processing ---------------------------------------------------------

    def process(self, limit: Optional[int] = None) -> int:
        """Drain shard queues into the sliding-window policy.

        Returns the number of reports applied.  ``limit`` caps the total
        across all shards (for incremental draining under load).
        """
        processed = 0
        policy = self.policy
        for app in self._apps.values():
            for shard in app.shards:
                while shard.queue:
                    if limit is not None and processed >= limit:
                        self._update_gauges()
                        return processed
                    report = shard.queue.popleft()
                    processed += 1
                    if report.observed_key_hex == app.original_key_hex:
                        self.metrics.counter("reporting.original_key_reports").inc()
                        continue
                    window, evicted = shard.window_for(
                        report.observed_key_hex, policy.max_tracked_keys
                    )
                    if evicted:
                        self.metrics.counter("reporting.evicted_keys").inc()
                    window.add(
                        report.timestamp, report.device_id, policy.max_tracked_devices
                    )
        self.metrics.counter("reporting.processed").inc(processed)
        self._update_gauges()
        return processed

    # -- verdicts -----------------------------------------------------------

    def verdict(self, app_name: str) -> Tuple[AggregatedVerdict, str]:
        """The developer's decision for one app, and the offending key.

        Ties between foreign keys with equal distinct-device counts are
        broken deterministically: highest count first, then
        lexicographically greatest fingerprint.
        """
        app = self._apps.get(app_name)
        if app is None:
            raise ReportingError(f"unknown app {app_name!r}")
        counts: Dict[str, int] = {}
        first_ts: Dict[str, float] = {}
        for shard in app.shards:
            dead: List[str] = []
            for key, window in shard.windows.items():
                window.prune(self.clock, self.policy.window_seconds)
                distinct = window.distinct_devices()
                if not distinct:
                    # A window that pruned to empty must not keep
                    # occupying a max_tracked_keys slot -- dead keys
                    # would evict live ones.
                    dead.append(key)
                    continue
                counts[key] = counts.get(key, 0) + distinct
                ts = first_ts.get(key, math.inf)
                if window.first_ts < ts:
                    first_ts[key] = window.first_ts
            for key in dead:
                del shard.windows[key]
            if dead:
                self.metrics.counter("reporting.evicted_keys").inc(len(dead))
        if not counts:
            return AggregatedVerdict.CLEAN, ""
        best_key = max(counts, key=lambda key: (counts[key], key))
        if counts[best_key] >= self.policy.distinct_devices:
            if app.takedown_key is None:
                if self._durability is not None:
                    # Journal the transition before committing it, so a
                    # crash right here replays into the same takedown
                    # rather than a second one.
                    self._durability.append_takedown(
                        app.name, best_key, self.clock
                    )
                app.takedown_key = best_key
                app.takedown_ts = self.clock
                latency = max(0.0, self.clock - first_ts[best_key])
                self.metrics.counter("reporting.takedowns").inc()
                self.metrics.histogram(
                    "reporting.takedown_latency_seconds"
                ).observe(latency)
            return AggregatedVerdict.TAKEDOWN, best_key
        return AggregatedVerdict.SUSPECT, best_key

    def verdicts(self) -> Dict[str, Tuple[AggregatedVerdict, str]]:
        return {name: self.verdict(name) for name in self._apps}

    def takedown_candidates(self) -> List[Tuple[str, str]]:
        """(app, offending key) pairs whose verdict is TAKEDOWN."""
        out = []
        for name in self._apps:
            verdict, key = self.verdict(name)
            if verdict is AggregatedVerdict.TAKEDOWN:
                out.append((name, key))
        return out

    # -- durability ---------------------------------------------------------

    def _snapshot_state(self) -> dict:
        """Plain-data view of the durable state (snapshot payload)."""
        return {
            "clock": self.clock,
            "trusted_nonce": self._trusted_nonce,
            "epoch": self.epoch,
            "apps": [
                {
                    "name": app.name,
                    "key": app.original_key_hex,
                    "takedown_key": app.takedown_key,
                    "takedown_ts": app.takedown_ts,
                    "shards": [
                        {
                            "nonces": list(shard.nonce_order),
                            "queue": [
                                canonical_bytes(report) for report in shard.queue
                            ],
                            "windows": [
                                (key, list(window.entries))
                                for key, window in shard.windows.items()
                            ],
                        }
                        for shard in app.shards
                    ],
                }
                for app in self._apps.values()
            ],
        }

    def _restore_state(self, state: dict) -> None:
        """Inverse of :meth:`_snapshot_state` (crash recovery)."""
        from repro.reporting.durability import decode_report_body

        self.clock = state["clock"]
        self._trusted_nonce = state["trusted_nonce"]
        self.epoch = state.get("epoch", 0)
        for app_state in state["apps"]:
            if len(app_state["shards"]) != self.shard_count:
                raise DurabilityError(
                    f"snapshot has {len(app_state['shards'])} shards, "
                    f"server configured for {self.shard_count}"
                )
            app = _AppState(
                app_state["name"], app_state["key"], self.shard_count
            )
            app.takedown_key = app_state["takedown_key"]
            app.takedown_ts = app_state["takedown_ts"]
            for shard, shard_state in zip(app.shards, app_state["shards"]):
                for device, nonce in shard_state["nonces"]:
                    token = (device, nonce)
                    shard.nonce_order.append(token)
                    shard.nonce_set.add(token)
                for body in shard_state["queue"]:
                    shard.queue.append(decode_report_body(body))
                for key, entries in shard_state["windows"]:
                    window = _KeyWindow()
                    for ts, device in entries:
                        window.add(ts, device, self.policy.max_tracked_devices)
                    shard.windows[key] = window
            self._apps[app.name] = app

    def _recover_existing(self) -> None:
        """Snapshot + WAL replay into a freshly constructed server."""
        snapshot = self._durability.load_snapshot()
        if snapshot is not None:
            self._restore_state(snapshot)
        for record in self._durability.replay():
            kind = record[0]
            if kind == "register":
                _, name, key = record
                # Idempotent: the snapshot (or an earlier replay of the
                # same record after a crash mid-compaction) may already
                # hold the app.
                if name not in self._apps:
                    self._apps[name] = _AppState(name, key, self.shard_count)
            elif kind == "takedown":
                _, name, key, ts = record
                app = self._apps.get(name)
                if app is not None and app.takedown_key is None:
                    app.takedown_key = key
                    app.takedown_ts = ts
            elif kind == "epoch":
                _, epoch = record
                if epoch > self.epoch:
                    self.epoch = epoch
            else:  # report
                _, name, report, trusted = record
                app = self._apps.get(name)
                if app is None:
                    self.metrics.counter("recovery.skipped_records").inc()
                    continue
                if trusted and report.nonce > self._trusted_nonce:
                    self._trusted_nonce = report.nonce
                if report.timestamp > self.clock:
                    self.clock = report.timestamp
                shard = app.shards[self._shard_index(report.device_id)]
                if shard.seen(report.device_id, report.nonce):
                    continue  # already in the snapshot: replay is idempotent
                shard.remember(report.device_id, report.nonce, self.dedup_window)
                shard.queue.append(report)
        self._update_gauges()

    # -- observability ------------------------------------------------------

    def tracked_state_size(self) -> int:
        """Entries held across all bounded structures (the O(shards) claim)."""
        return sum(
            shard.tracked_size()
            for app in self._apps.values()
            for shard in app.shards
        )

    def queue_depth(self) -> int:
        return sum(
            len(shard.queue)
            for app in self._apps.values()
            for shard in app.shards
        )

    def _update_gauges(self) -> None:
        self.metrics.gauge("reporting.queue_depth").set(self.queue_depth())
        self.metrics.gauge("reporting.tracked_state").set(self.tracked_state_size())
