"""Parallel batch protection: a whole corpus through BombDroid.

The market operator's workload (thousands of apps through the same
pipeline) fans out across a ``ProcessPoolExecutor`` -- protection is
CPU-bound pure Python, so processes, not threads.  Three properties
the driver guarantees:

* **Determinism** -- outputs are byte-identical for ``workers=1`` and
  ``workers=N``.  Workers receive framed APK bytes and return framed
  bytes (no object identity crosses the process boundary), each app's
  randomness derives from ``config.seed`` mixed with its dex digest,
  and outcomes are collected in job order regardless of completion
  order.
* **Failure isolation** -- one app failing (verification gate, corrupt
  input, instrumentation crash) becomes a structured
  :class:`AppOutcome`; the batch never aborts.
* **Cache reuse** -- with a ``cache_dir``, artifacts are served from
  the content-addressed :class:`repro.pipeline.cache.ArtifactCache`
  keyed by (dex digest, config digest, signing key, code version).

Serial fallback: ``workers=1`` or a non-picklable config/key runs
everything in-process with identical results.
"""

from __future__ import annotations

import enum
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.apk.io import apk_from_bytes, apk_to_bytes, load_apk
from repro.apk.package import ENTRY_DEX, Apk
from repro.core import BombDroid, BombDroidConfig, ProtectionResult
from repro.core.stats import InstrumentationReport
from repro.crypto import RSAKeyPair, sha1_hex
from repro.errors import ReproError, VerificationError
from repro.metrics import MetricsRegistry
from repro.pipeline.cache import ArtifactCache, artifact_key

#: Histogram buckets for per-app protect latency (seconds).
_LATENCY_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


# ---------------------------------------------------------------------------
# Inputs
# ---------------------------------------------------------------------------


@dataclass
class BatchJob:
    """One app to protect.  Carries bytes, not objects: jobs cross
    process boundaries and feed digests, so the framed form is
    canonical."""

    name: str
    apk_bytes: bytes
    developer_key: RSAKeyPair

    @classmethod
    def from_apk(cls, name: str, apk: Apk, developer_key: RSAKeyPair) -> "BatchJob":
        return cls(name=name, apk_bytes=apk_to_bytes(apk), developer_key=developer_key)

    def dex_digest(self) -> str:
        """SHA-1 of the app's classes.dex."""
        return sha1_hex(apk_from_bytes(self.apk_bytes, self.name).entry(ENTRY_DEX))

    def content_digest(self) -> str:
        """SHA-1 over the whole framed container -- the cache-key
        ingredient.  Covers resources too: stego embedding makes the
        protected output depend on more than the dex."""
        return sha1_hex(self.apk_bytes)


def jobs_from_dir(
    corpus_dir: str,
    developer_key: RSAKeyPair,
    suffix: str = ".rapk",
) -> List[BatchJob]:
    """One job per ``*.rapk`` file, sorted by filename (deterministic
    batch order)."""
    jobs = []
    for entry in sorted(os.listdir(corpus_dir)):
        if not entry.endswith(suffix):
            continue
        path = os.path.join(corpus_dir, entry)
        apk = load_apk(path)  # validates framing early, per-file errors loud
        jobs.append(
            BatchJob(
                name=entry[: -len(suffix)],
                apk_bytes=apk_to_bytes(apk),
                developer_key=developer_key,
            )
        )
    return jobs


@dataclass
class BatchOptions:
    """Driver knobs (the protection knobs live in BombDroidConfig)."""

    #: Worker processes: an int (1 = serial) or ``"auto"`` -- size the
    #: pool to the host, degrading to serial when ``os.cpu_count() <= 1``
    #: (BENCH_protect_batch records a 0.675x ProcessPool *slowdown* on
    #: 1-core hosts: pickling + process startup with no parallelism to
    #: pay for it).
    workers: Union[int, str] = 1
    cache_dir: Optional[str] = None
    strict: bool = False


def resolve_workers(
    workers: Union[int, str], job_count: int
) -> Tuple[int, bool]:
    """``(worker_count, auto_serial)`` for a ``BatchOptions.workers``.

    ``auto_serial`` is True only when ``"auto"`` *chose* serial because
    the host cannot win from fan-out -- that decision is recorded in
    ``BatchResult.serial_fallback`` and the bench output.
    """
    if workers == "auto":
        cpus = os.cpu_count() or 1
        if cpus <= 1:
            return 1, True
        return min(cpus, max(job_count, 1)), False
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ValueError(f"workers must be an int or 'auto', got {workers!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers, False


# ---------------------------------------------------------------------------
# Outcomes
# ---------------------------------------------------------------------------


class OutcomeStatus(enum.Enum):
    """What happened to one app; the batch itself always completes."""

    OK = "ok"
    VERIFICATION_FAILED = "verification_failed"
    CRASHED = "crashed"


@dataclass
class AppOutcome:
    """Structured per-app result (never an exception)."""

    name: str
    status: OutcomeStatus
    result: Optional[ProtectionResult] = None
    error: str = ""
    error_type: str = ""
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is OutcomeStatus.OK

    @property
    def cache_hit(self) -> bool:
        return bool(self.result and self.result.cache_hit)


@dataclass
class BatchResult:
    """The whole batch: outcomes in job order + aggregate accounting."""

    outcomes: List[AppOutcome]
    elapsed: float
    workers: int
    serial_fallback: bool = False
    #: How the compute pass actually ran: ``"serial"`` (in-process) or
    #: ``"process-pool"`` (framed tasks fanned across workers).  Distinct
    #: from ``serial_fallback``, which records *why* serial was chosen.
    strategy: str = "serial"
    metrics: Dict[str, object] = field(default_factory=dict)

    def by_status(self, status: OutcomeStatus) -> List[AppOutcome]:
        return [o for o in self.outcomes if o.status is status]

    @property
    def ok_count(self) -> int:
        return len(self.by_status(OutcomeStatus.OK))

    @property
    def failed_count(self) -> int:
        return len(self.outcomes) - self.ok_count

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def apps_per_second(self) -> float:
        return len(self.outcomes) / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> str:
        verif = len(self.by_status(OutcomeStatus.VERIFICATION_FAILED))
        crashed = len(self.by_status(OutcomeStatus.CRASHED))
        mode = f"{self.workers} worker(s), {self.strategy}"
        if self.serial_fallback:
            mode += " (serial fallback)"
        return (
            f"protected {self.ok_count}/{len(self.outcomes)} app(s) "
            f"in {self.elapsed:.2f}s ({self.apps_per_second:.2f} apps/s, "
            f"{mode}); {self.cache_hits} from cache, "
            f"{verif} verification failure(s), {crashed} crash(es)"
        )


# ---------------------------------------------------------------------------
# The worker (module-level: must be picklable for the process pool)
# ---------------------------------------------------------------------------


def _protect_worker(task: Tuple[str, bytes, RSAKeyPair, BombDroidConfig, bool]) -> Dict:
    """Protect one app; ALL failures come back as data, never raise.

    Returns plain bytes/dicts so results pickle cheaply and the parent
    can byte-compare artifacts across worker counts.
    """
    name, apk_bytes, developer_key, config, strict = task
    start = time.perf_counter()
    try:
        apk = apk_from_bytes(apk_bytes, source=name)
        result = BombDroid(config).protect(apk, developer_key, strict=strict)
        return {
            "name": name,
            "status": OutcomeStatus.OK.value,
            "apk_bytes": apk_to_bytes(result.apk),
            "report": result.report.to_dict(),
            "timings": result.timings,
            "app_seed": result.app_seed,
            "seconds": time.perf_counter() - start,
        }
    except VerificationError as exc:
        status, error = OutcomeStatus.VERIFICATION_FAILED, str(exc)
        error_type = type(exc).__name__
    except ReproError as exc:
        status, error = OutcomeStatus.CRASHED, str(exc)
        error_type = type(exc).__name__
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        status, error = OutcomeStatus.CRASHED, str(exc)
        error_type = type(exc).__name__
    return {
        "name": name,
        "status": status.value,
        "error": error,
        "error_type": error_type,
        "seconds": time.perf_counter() - start,
    }


def _protect_worker_frame(blob: bytes) -> Dict:
    """Framed entry point for the process pool.

    The parent serializes each task exactly once with
    ``pickle.dumps(task, HIGHEST_PROTOCOL)`` -- the same pass that
    proves the task can cross the process boundary at all -- and ships
    the resulting frame.  Shipping bytes instead of the tuple keeps the
    executor's own transport pickling trivial (one ``bytes`` object)
    and guarantees the poolability check tested the exact payload the
    worker receives.
    """
    return _protect_worker(pickle.loads(blob))


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def _frame_tasks(tasks: List[Tuple]) -> Optional[List[bytes]]:
    """Serialize every task once, or ``None`` when any cannot pickle.

    One pass does double duty: it *is* the poolability check (a task
    must pickle to cross the process boundary) and its output *is* the
    worker payload (``_protect_worker_frame`` unpickles the same
    frame).  The old driver pickled each task twice -- once to probe,
    once inside ``pool.submit`` -- which BENCH_protect_batch showed as
    pure overhead on APK-heavy tasks.
    """
    frames = []
    try:
        for task in tasks:
            frames.append(pickle.dumps(task, pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - any pickling failure means serial
        return None
    return frames


def _outcome_from_payload(
    payload: Dict, cache_key: Optional[str]
) -> AppOutcome:
    """Rehydrate a worker's dict into an AppOutcome."""
    status = OutcomeStatus(payload["status"])
    if status is not OutcomeStatus.OK:
        return AppOutcome(
            name=payload["name"],
            status=status,
            error=payload.get("error", ""),
            error_type=payload.get("error_type", ""),
            seconds=payload.get("seconds", 0.0),
        )
    result = ProtectionResult(
        apk=apk_from_bytes(payload["apk_bytes"], source=payload["name"]),
        report=InstrumentationReport.from_dict(payload["report"]),
        timings=dict(payload.get("timings", {})),
        app_seed=payload.get("app_seed", 0),
        cache_hit=False,
        cache_key=cache_key,
    )
    return AppOutcome(
        name=payload["name"],
        status=status,
        result=result,
        seconds=payload.get("seconds", 0.0),
    )


def protect_batch(
    jobs: Sequence[BatchJob],
    config: Optional[BombDroidConfig] = None,
    options: Optional[BatchOptions] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> BatchResult:
    """Protect every job; outcomes come back in job order.

    ``metrics`` (a shared :class:`repro.metrics.MetricsRegistry`)
    accumulates counters (``pipeline.apps``, ``pipeline.ok``,
    ``pipeline.cache.hits`` ...) and histograms (``pipeline.protect_seconds``,
    ``pipeline.stage.<stage>``) across calls.
    """
    config = config or BombDroidConfig()
    options = options or BatchOptions()
    registry = metrics if metrics is not None else MetricsRegistry()
    cache = ArtifactCache(options.cache_dir) if options.cache_dir else None
    worker_count, auto_serial = resolve_workers(options.workers, len(jobs))
    if auto_serial:
        registry.counter("pipeline.serial_fallbacks").inc()

    started = time.perf_counter()
    outcomes: List[Optional[AppOutcome]] = [None] * len(jobs)
    pending: List[Tuple[int, BatchJob, Optional[str]]] = []

    # -- cache pass -----------------------------------------------------------
    for index, job in enumerate(jobs):
        key = None
        if cache is not None:
            key = artifact_key(
                job.content_digest(), config, job.developer_key, options.strict
            )
            hit = cache.get(key)
            if hit is not None:
                result = ProtectionResult(
                    apk=apk_from_bytes(hit.apk_bytes, source=job.name),
                    report=InstrumentationReport.from_dict(hit.report),
                    timings={},
                    app_seed=hit.app_seed,
                    cache_hit=True,
                    cache_key=key,
                )
                outcomes[index] = AppOutcome(
                    name=job.name, status=OutcomeStatus.OK, result=result
                )
                registry.counter("pipeline.cache.hits").inc()
                continue
            registry.counter("pipeline.cache.misses").inc()
        pending.append((index, job, key))

    # -- compute pass ---------------------------------------------------------
    tasks = [
        (job.name, job.apk_bytes, job.developer_key, config, options.strict)
        for _, job, _ in pending
    ]
    serial_fallback = auto_serial
    use_pool = worker_count > 1 and bool(tasks)
    frames: Optional[List[bytes]] = None
    if use_pool:
        frames = _frame_tasks(tasks)
        if frames is None:
            use_pool = False
            serial_fallback = True
            registry.counter("pipeline.serial_fallbacks").inc()

    if use_pool:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            futures = [pool.submit(_protect_worker_frame, frame) for frame in frames]
            payloads = []
            for future, task in zip(futures, tasks):
                try:
                    payloads.append(future.result())
                except Exception as exc:  # pool/transport failure, isolate
                    payloads.append({
                        "name": task[0],
                        "status": OutcomeStatus.CRASHED.value,
                        "error": str(exc),
                        "error_type": type(exc).__name__,
                        "seconds": 0.0,
                    })
    else:
        payloads = [_protect_worker(task) for task in tasks]
    strategy = "process-pool" if use_pool else "serial"

    for (index, job, key), payload in zip(pending, payloads):
        outcome = _outcome_from_payload(payload, key)
        outcomes[index] = outcome
        if cache is not None and outcome.ok and key is not None:
            cache.put(
                key,
                payload["apk_bytes"],
                payload["report"],
                app_seed=payload.get("app_seed", 0),
            )

    # -- accounting -----------------------------------------------------------
    elapsed = time.perf_counter() - started
    registry.gauge("pipeline.workers").set(worker_count)
    latency = registry.histogram("pipeline.protect_seconds", _LATENCY_BUCKETS)
    for outcome in outcomes:
        registry.counter("pipeline.apps").inc()
        registry.counter(f"pipeline.{outcome.status.value}").inc()
        if outcome.seconds:
            latency.observe(outcome.seconds)
        if outcome.result is not None:
            for stage, seconds in outcome.result.timings.items():
                registry.histogram(
                    f"pipeline.stage.{stage}", _LATENCY_BUCKETS
                ).observe(seconds)

    return BatchResult(
        outcomes=[o for o in outcomes if o is not None],
        elapsed=elapsed,
        workers=worker_count,
        serial_fallback=serial_fallback,
        strategy=strategy,
        metrics=registry.snapshot(),
    )
