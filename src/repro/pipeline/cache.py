"""Content-addressed on-disk cache of protection artifacts.

Protecting an app is pure: the output APK and report are fully
determined by (input dex, config, signing key, code version).  The
cache exploits that -- the key is a digest over exactly those inputs,
so re-protecting an unchanged app is a read, and *any* change to the
app bytes, the config knobs, the signing identity or the pipeline code
itself misses and recomputes.  Entries are single JSON files written
atomically (temp file + ``os.replace``), so concurrent workers racing
on the same key at worst both write the same content.

A corrupt or unreadable entry is treated as a miss, never an error.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

from repro import __version__
from repro.core.config import BombDroidConfig
from repro.crypto import RSAKeyPair, sha1_hex

#: Bumped (together with ``repro.__version__``) whenever the pipeline's
#: output format changes; both feed the cache key so stale artifacts
#: from older code can never be served.
ARTIFACT_FORMAT = 1


def config_digest(config: BombDroidConfig) -> str:
    """Stable digest over every config knob (enums by value)."""

    def normalize(value):
        if isinstance(value, enum.Enum):
            return value.value
        if isinstance(value, tuple):
            return [normalize(item) for item in value]
        return value

    fields = {
        f.name: normalize(getattr(config, f.name))
        for f in dataclasses.fields(config)
    }
    blob = json.dumps(fields, sort_keys=True, default=repr)
    return sha1_hex(blob.encode("utf-8"))


def artifact_key(
    content_digest_hex: str,
    config: BombDroidConfig,
    developer_key: RSAKeyPair,
    strict: bool = False,
) -> str:
    """The content address of one protection run's output.

    ``content_digest_hex`` must cover the *whole* container (dex,
    resources, manifest, cert), not just ``classes.dex`` -- the stego
    stage embeds digests into string resources, so two apps with
    identical dex but different resources protect to different bytes.
    """
    blob = "|".join(
        (
            f"v{__version__}.{ARTIFACT_FORMAT}",
            content_digest_hex,
            config_digest(config),
            developer_key.public.fingerprint().hex(),
            "strict" if strict else "lenient",
        )
    )
    return sha1_hex(blob.encode("utf-8"))


@dataclass
class CachedArtifact:
    """One cache entry: the protected APK bytes + the report dict."""

    key: str
    apk_bytes: bytes
    report: Dict[str, object]
    app_seed: int


class ArtifactCache:
    """Filesystem-backed, content-addressed artifact store.

    Layout: ``<root>/<key[:2]>/<key>.json`` -- the two-char fan-out
    keeps directories small on market-sized corpora.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[CachedArtifact]:
        """Look up ``key``; a damaged entry counts as a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("key") != key:
                raise ValueError("key mismatch")
            artifact = CachedArtifact(
                key=key,
                apk_bytes=base64.b64decode(payload["apk_b64"]),
                report=payload["report"],
                app_seed=int(payload.get("app_seed", 0)),
            )
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    def put(
        self,
        key: str,
        apk_bytes: bytes,
        report: Dict[str, object],
        app_seed: int = 0,
    ) -> None:
        """Store atomically; concurrent same-key writers are harmless."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "key": key,
            "app_seed": app_seed,
            "report": report,
            "apk_b64": base64.b64encode(apk_bytes).decode("ascii"),
        }
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:8]}-", dir=os.path.dirname(path)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for name in files if name.endswith(".json"))
        return count
