"""Batch protection pipeline: parallel corpus protection with caching.

The market-operator view of BombDroid: instead of one
``BombDroid.protect()`` call, a whole corpus flows through
:func:`protect_batch` -- fanned out over worker processes, served from
a content-addressed artifact cache where possible, with per-app
failures isolated into structured outcomes and batch-level metrics
aggregated through :mod:`repro.metrics`.
"""

from repro.pipeline.batch import (
    AppOutcome,
    BatchJob,
    BatchOptions,
    BatchResult,
    OutcomeStatus,
    jobs_from_dir,
    protect_batch,
    resolve_workers,
)
from repro.pipeline.cache import (
    ARTIFACT_FORMAT,
    ArtifactCache,
    CachedArtifact,
    artifact_key,
    config_digest,
)

__all__ = [
    "AppOutcome",
    "BatchJob",
    "BatchOptions",
    "BatchResult",
    "OutcomeStatus",
    "jobs_from_dir",
    "protect_batch",
    "resolve_workers",
    "ARTIFACT_FORMAT",
    "ArtifactCache",
    "CachedArtifact",
    "artifact_key",
    "config_digest",
]
