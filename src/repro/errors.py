"""Exception hierarchy shared across the repro packages.

Every package raises subclasses of :class:`ReproError` so callers can
distinguish failures of the reproduction machinery from ordinary Python
errors.  The hierarchy mirrors the subsystem layout: crypto, dex
(bytecode), vm (execution), apk (packaging), core (instrumentation) and
attacks each have a dedicated base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CryptoError(ReproError):
    """Cryptographic failure (bad key size, bad padding, bad signature)."""


class BadPaddingError(CryptoError):
    """Ciphertext decrypted to an invalid PKCS#7 padding.

    This is the error an attacker sees when forcing a bomb payload to
    decrypt under the wrong key.
    """


class DexError(ReproError):
    """Malformed bytecode, assembly error, or serialization failure."""


class DexFormatError(DexError):
    """A serialized dex blob could not be parsed."""


class VMError(ReproError):
    """Runtime failure inside the interpreter."""


class VMCrash(VMError):
    """The app process died (uncaught exception, corrupted state...).

    Repackaging responses intentionally raise this; a deleted woven bomb
    also surfaces as a crash because the original app code is gone.

    ``bomb_id`` and ``site`` are attached when the crash originates in
    bomb infrastructure (payload decrypt, dynamic class load...), so
    chaos harnesses and debuggers can attribute the failure without
    string-parsing the message.
    """

    def __init__(self, message: str = "", bomb_id: str = None, site: str = None):
        super().__init__(message)
        self.bomb_id = bomb_id
        self.site = site


class PayloadError(VMCrash):
    """A bomb payload's infrastructure failed (decrypt, deserialize,
    class load, or interpretation -- not a deliberate response).

    Under a :class:`repro.vm.containment.ContainmentPolicy` these are
    caught at the bomb boundary, recorded as ``payload_error`` events,
    and execution falls through to the original branch semantics; in
    ``strict`` mode the policy re-raises this class for debugging.
    """


class ContainmentBreach(VMError):
    """A non-library exception escaped the bomb containment boundary.

    Containment only ever swallows the library's own taxonomy; anything
    else is a genuine bug in the reproduction machinery and is wrapped
    in this class so it is loud rather than silently degraded.
    """


class MethodNotFound(VMError):
    """Invocation target does not exist in the loaded class set."""


class FieldNotFound(VMError):
    """Field access target does not exist."""


class BudgetExhausted(VMError):
    """The interpreter hit its instruction budget (likely endless loop).

    The endless-loop repackaging response triggers this under test
    harnesses that cap execution.
    """


class ApkError(ReproError):
    """Packaging failure."""


class SignatureError(ApkError):
    """APK signature verification failed."""


class AnalysisError(ReproError):
    """Static analysis failure (unreachable code, malformed CFG...)."""


class InstrumentationError(ReproError):
    """BombDroid could not transform the app."""


class VerificationError(InstrumentationError):
    """Strict-mode gate: the protected app failed verification or lint.

    Raised by ``BombDroid.protect(..., strict=True)`` when the verifier
    or a stealth lint rule reports error-severity diagnostics; the
    ``diagnostics`` attribute carries the findings.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class ReportingError(ReproError):
    """Failure inside the detection-report pipeline (``repro.reporting``)."""


class WireError(ReportingError):
    """A serialized detection report could not be decoded."""


class DurabilityError(ReportingError):
    """The durable ingestion state (WAL / snapshot) is unusable.

    Raised by :mod:`repro.reporting.durability` when recovery cannot
    proceed at all -- e.g. the snapshot was written for a different
    shard count.  Tolerable damage (torn WAL tails, bit-flipped
    records, a corrupt snapshot) is *not* an exception: replay degrades
    gracefully and accounts for it in the ``recovery.*`` metrics.
    """


class TransportError(ReportingError):
    """The report transport is unreachable (simulated network failure).

    Raised by transports handed to :class:`repro.reporting.ReportClient`;
    the client answers with retry/backoff and, past its attempt budget,
    an offline spool.
    """


class FaultInjected(ReproError):
    """An armed :class:`repro.chaos.FaultPlan` fired at a fault point.

    Raised by ``raise``-mode injectors (unless the arm specifies a more
    realistic exception type such as :class:`TransportError`); carries
    the fault site for attribution.
    """

    def __init__(self, message: str = "", site: str = None):
        super().__init__(message)
        self.site = site


class AttackError(ReproError):
    """An adversary analysis failed in an unexpected way."""


class SolverError(AttackError):
    """The constraint solver could not decide a path condition."""


class UnsolvableConstraint(SolverError):
    """The path condition involves an uninvertible (hash) constraint.

    Raised by the symbolic executor's solver when the only way to take a
    branch is to invert a cryptographic hash -- the heart of the paper's
    G1 resilience argument.
    """
