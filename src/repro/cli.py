"""Command-line interface.

::

    python -m repro build     --name AndroFish --out app.apk
    python -m repro protect   --in app.apk --out protected.apk --key-seed 11
    python -m repro protect-batch --corpus apps/ --out protected/ --key-seed 11 \
                              --workers 4 --cache-dir .cache/
    python -m repro inspect   --in protected.apk [--disassemble]
    python -m repro lint      --in protected.apk [--format human|json|sarif]
                              [--rules a,b]
    python -m repro detect    --in suspect.apk [--format human|json|sarif]
                              [--min-score 2.0] [--top 10]
    python -m repro repackage --in protected.apk --out pirated.apk --key-seed 666
    python -m repro simulate  --in pirated.apk --devices 10 --events 600
    python -m repro attack    --in protected.apk --attack symbolic
    python -m repro serve-reports --app Game --key-hex <fp> --reports r.jsonl \
                              [--data-dir state/]
    python -m repro serve-reports --app Game --key-hex <fp> \
                              --listen 127.0.0.1:7788 --data-dir state/ \
                              [--replication-listen 127.0.0.1:7789]
    python -m repro replica   --data-dir replica/ --leader 127.0.0.1:7789 \
                              [--promote]
    python -m repro supervise --data-dir standby/ --leader 127.0.0.1:7788 \
                              --replicate-from 127.0.0.1:7789
    python -m repro recover   --data-dir state/
    python -m repro fleet     --in pirated.apk --original protected.apk \
                              --devices 1000000 [--transport tcp]
    python -m repro chaos     --seed 7 --trials 25 [--verify-replay]
    python -m repro chaos     --crash-restart --seed 11 [--reports 48]
    python -m repro chaos     --failover --seed 17 [--reports 30]

APK files on disk are the serialized entry container (a simple binary
framing of the entries, manifest and certificate).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core import BombDroid, BombDroidConfig
from repro.corpus import NAMED_APPS, build_app, build_named_app
from repro.crypto import RSAKeyPair
from repro.errors import (
    ReproError,
    VerificationError,
    VMCrash,
    VMError,
)
from repro.repack import repackage

#: Exit codes, so chaos/CI scripting can distinguish failure classes.
EXIT_OK = 0
EXIT_FAILURE = 1        # generic library error / failed check
EXIT_USAGE = 2          # bad invocation (argparse also uses 2)
EXIT_VERIFICATION = 3   # a verification gate / invariant failed
EXIT_CRASH = 4          # the VM crashed


# ---------------------------------------------------------------------------
# On-disk APK framing (moved to repro.apk.io; re-exported for callers)
# ---------------------------------------------------------------------------

from repro.apk.io import load_apk, save_apk, save_apk_with_manifest

_save_with_manifest = save_apk_with_manifest


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _cmd_build(args) -> int:
    named = {spec.name for spec in NAMED_APPS}
    if args.name in named:
        bundle = build_named_app(args.name)
    else:
        bundle = build_app(args.name, category=args.category, seed=args.seed, scale=args.scale)
    _save_with_manifest(bundle.apk, args.out)
    print(f"built {args.name}: {bundle.dex.instruction_count()} instructions -> {args.out}")
    print(f"developer key seed: {args.seed + 7000 if args.name not in named else 'see corpus spec'}")
    return 0


def _cmd_protect(args) -> int:
    apk = load_apk(getattr(args, "in"))
    key = RSAKeyPair.generate(seed=args.key_seed)
    if apk.cert.fingerprint_hex() != key.public.fingerprint().hex():
        print("warning: --key-seed does not match the APK's signer; bombs will "
              "treat the APK's current key as genuine", file=sys.stderr)
    config = BombDroidConfig(
        seed=args.seed,
        profiling_events=args.profiling_events,
        alpha=args.alpha,
        double_trigger=not args.single_trigger,
        mute_after_detection=args.mute,
    )
    result = BombDroid(config).protect(apk, key, strict=args.strict)
    _save_with_manifest(result.apk, args.out)
    print(result.report.summary())
    print(f"size increase: {result.report.size_increase:+.1%} "
          f"({result.total_seconds:.2f}s) -> {args.out}")
    return 0


def _cmd_protect_batch(args) -> int:
    """Protect every ``*.rapk`` in a corpus directory, in parallel."""
    import os

    from repro.pipeline import BatchOptions, OutcomeStatus, jobs_from_dir, protect_batch

    key = RSAKeyPair.generate(seed=args.key_seed)
    jobs = jobs_from_dir(args.corpus, key)
    if not jobs:
        print(f"error: no .rapk files in {args.corpus}", file=sys.stderr)
        return EXIT_USAGE
    config = BombDroidConfig(
        seed=args.seed,
        profiling_events=args.profiling_events,
        alpha=args.alpha,
    )
    options = BatchOptions(
        workers=args.workers, cache_dir=args.cache_dir, strict=args.strict
    )
    result = protect_batch(jobs, config, options)

    os.makedirs(args.out, exist_ok=True)
    for outcome in result.outcomes:
        if outcome.ok:
            out_path = os.path.join(args.out, f"{outcome.name}.rapk")
            _save_with_manifest(outcome.result.apk, out_path)
            origin = "cache" if outcome.cache_hit else f"{outcome.seconds:.2f}s"
            print(f"  {outcome.name}: {outcome.result.report.total_injected} "
                  f"bomb(s) [{origin}] -> {out_path}")
        else:
            print(f"  {outcome.name}: {outcome.status.value} "
                  f"({outcome.error_type}: {outcome.error})", file=sys.stderr)
    print()
    print(result.summary())

    if result.by_status(OutcomeStatus.CRASHED):
        return EXIT_FAILURE
    if result.by_status(OutcomeStatus.VERIFICATION_FAILED):
        return EXIT_VERIFICATION
    return EXIT_OK


def _cmd_inspect(args) -> int:
    apk = load_apk(getattr(args, "in"))
    try:
        apk.verify()
        status = "signature OK"
    except ReproError as exc:
        status = f"signature INVALID ({exc})"
    dex = apk.dex()
    print(f"signer: {apk.cert.fingerprint_hex()}  [{status}]")
    print(f"classes: {len(dex.classes)}  methods: {sum(1 for _ in dex.iter_methods())}  "
          f"instructions: {dex.instruction_count()}")
    from repro.dex.opcodes import Op

    bomb_sites = sum(
        1
        for method in dex.iter_methods()
        for instr in method.instructions
        if instr.op is Op.INVOKE and instr.value == "bomb.hash"
    )
    print(f"visible bomb sites: {bomb_sites}")
    if args.disassemble:
        from repro.dex.disassembler import disassemble

        print(disassemble(dex))
    return 0


def _lint_rule_catalog():
    """rule id -> (severity, description), verifier + stealth rules."""
    from repro.analysis.verifier import VERIFIER_RULES
    from repro.lint import RULES

    catalog = dict(VERIFIER_RULES)
    for rule in RULES.values():
        catalog[rule.id] = (rule.severity, rule.description)
    return catalog


def _cmd_lint(args) -> int:
    import json

    from repro.lint import (
        RULES,
        errors,
        format_report,
        run_lint,
        sort_diagnostics,
        to_sarif,
    )
    from repro.analysis.verifier import VERIFIER_RULES

    if args.list_rules:
        for rule_id, (severity, description) in sorted(VERIFIER_RULES.items()):
            print(f"{rule_id:22} {severity.name.lower():8} verifier  {description}")
        for rule in RULES.values():
            print(
                f"{rule.id:22} {rule.severity.name.lower():8} "
                f"{rule.paper_ref:9} {rule.description}"
            )
        return 0
    if getattr(args, "in") is None:
        print("error: --in is required (or use --list-rules)", file=sys.stderr)
        return EXIT_USAGE
    apk = load_apk(getattr(args, "in"))
    rules = [r for r in args.rules.split(",") if r] if args.rules else None
    # Meshed apps ship an alias key in strings.xml; resolve their
    # aliased trigger invokes so site recovery still works from disk.
    from repro.vm.aliases import alias_table_from_resources

    aliases = alias_table_from_resources(apk.resources().strings) or None
    try:
        diagnostics = run_lint(apk.dex(), rules=rules, aliases=aliases)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(json.dumps([d.to_dict() for d in sort_diagnostics(diagnostics)], indent=2))
    elif fmt == "sarif":
        print(json.dumps(
            to_sarif(diagnostics, tool_name="repro-lint",
                     rule_catalog=_lint_rule_catalog()),
            indent=2,
        ))
    else:
        print(format_report(diagnostics))
    return 1 if errors(diagnostics) else 0


def _cmd_detect(args) -> int:
    """Run the static trigger (HSO) detector over an APK."""
    import json

    from repro.analysis.triggers import analyze_dex
    from repro.lint import to_sarif

    apk = load_apk(getattr(args, "in"))
    scan = analyze_dex(apk.dex(), min_score=args.min_score)
    findings = scan.findings[: args.top] if args.top else scan.findings
    truncated = len(scan.findings) - len(findings)

    if args.format == "json":
        payload = {
            "findings": [f.to_dict() for f in findings],
            "total_findings": len(scan.findings),
            "opaque_guards": scan.opaque_guards,
            "methods_scanned": scan.methods_scanned,
            "methods_skipped": scan.methods_skipped,
            "branches_classified": scan.branches_classified,
            "by_kind": scan.by_kind(),
            "min_score": args.min_score,
        }
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        catalog = {
            "hso-finding": (
                None,
                "suspicious guarded region: candidate hidden sensitive operation",
            )
        }
        print(json.dumps(
            to_sarif([f.to_diagnostic() for f in findings],
                     tool_name="repro-detect", rule_catalog=catalog),
            indent=2,
        ))
    else:
        for rank, finding in enumerate(findings, start=1):
            print(f"{rank:3}. {finding.describe()}")
        if truncated:
            print(f"     ... {truncated} lower-ranked finding(s) suppressed "
                  f"(--top {args.top})")
        if findings:
            print()
        print(f"scanned {scan.methods_scanned} method(s), classified "
              f"{scan.branches_classified} branch(es): "
              f"{len(scan.findings)} finding(s) >= score {args.min_score:g}, "
              f"{len(scan.opaque_guards)} hash-opaque guard(s) with no "
              f"localizable payload")
        if scan.opaque_guards:
            print("opaque guards (visible trigger, encrypted payload -- "
                  "nothing to localize):")
            for site in scan.opaque_guards[:10]:
                print(f"  {site}")
            if len(scan.opaque_guards) > 10:
                print(f"  ... {len(scan.opaque_guards) - 10} more")
    return EXIT_FAILURE if scan.findings else EXIT_OK


def _cmd_repackage(args) -> int:
    apk = load_apk(getattr(args, "in"))
    attacker = RSAKeyPair.generate(seed=args.key_seed)
    pirated = repackage(apk, attacker)
    _save_with_manifest(pirated, args.out)
    print(f"repackaged with key {attacker.public.fingerprint().hex()[:16]}... -> {args.out}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.fuzzing import DynodroidGenerator
    from repro.vm import DevicePopulation, Runtime

    apk = load_apk(getattr(args, "in"))
    population = DevicePopulation(seed=args.seed)
    detected = 0
    for index in range(args.devices):
        runtime = Runtime(
            apk.dex(), device=population.sample(),
            package=apk.install_view(), seed=index,
        )
        try:
            runtime.boot()
        except VMError:
            pass
        for event in DynodroidGenerator(apk.dex(), seed=index).stream(args.events):
            try:
                runtime.dispatch(event)
            except VMError:
                pass
        marker = "DETECTED" if runtime.detections else "quiet"
        print(f"device {index}: {marker}  "
              f"(bombs evaluated: {len(runtime.bombs.bombs_with('evaluated'))}, "
              f"reports: {len(runtime.reports)})")
        detected += bool(runtime.detections)
    print(f"\nrepackaging detected on {detected}/{args.devices} devices")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import (
        DeletionAttack,
        ForcedExecutionAttack,
        SlicingAttack,
        StaticTriggerDetector,
        SymbolicAttack,
        TextSearchAttack,
    )

    apk = load_apk(getattr(args, "in"))
    attacks = {
        "text": lambda: TextSearchAttack().run(apk),
        "symbolic": lambda: SymbolicAttack(max_paths=48).run(apk),
        "forced": lambda: ForcedExecutionAttack(seed=args.seed, per_method_branches=4).run(apk),
        "slicing": lambda: SlicingAttack(seed=args.seed).run(apk),
        "deletion": lambda: DeletionAttack(seed=args.seed).run(
            apk, RSAKeyPair.generate(seed=9999)
        ),
        "static": lambda: StaticTriggerDetector().run(apk),
    }
    result = attacks[args.attack]()
    print(result.summary())
    if result.notes:
        print(f"notes: {result.notes}")
    for key, value in result.details.items():
        if isinstance(value, (int, float, str, bool)):
            print(f"  {key}: {value}")
    return 0 if not result.defeated_defense else 1


def _workers_arg(value: str):
    """``--workers`` accepts an int or the literal ``auto``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _parse_hostport(value: str):
    """``HOST:PORT`` -> ``(host, port)`` (usage error on anything else)."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT with a numeric port, got {value!r}"
        ) from None


class _ShutdownRequested(Exception):
    """SIGINT/SIGTERM during file ingestion: finish cleanly, exit 0."""


def _make_emitter(data_dir, name):
    """print() that also appends to ``<data_dir>/<name>``.

    Long-running cluster processes (serve-reports, replica, supervise)
    mirror their status lines into a log under their own ``--data-dir``
    -- never into the invoking directory -- so a three-process demo
    leaves its evidence next to its WALs.
    """
    if data_dir is None:
        def emit(line: str) -> None:
            print(line, flush=True)
        return emit
    os.makedirs(data_dir, exist_ok=True)
    path = os.path.join(data_dir, name)

    def emit(line: str) -> None:
        print(line, flush=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
    return emit


def _cmd_serve_reports(args) -> int:
    """Ingest signed detection reports through ReportServer.

    Two sources: ``--reports`` (JSON lines from a file or stdin) or
    ``--listen HOST:PORT`` (DRPT frames over TCP).  Both finish the same
    way on SIGINT/SIGTERM: drain the queues, close the WALs behind a
    final snapshot, print the verdict, exit 0.
    """
    import signal

    from repro.reporting import ReportServer, TakedownPolicy

    if args.key_hex:
        original_key = args.key_hex
    elif getattr(args, "in") is not None:
        original_key = load_apk(getattr(args, "in")).cert.fingerprint_hex()
    else:
        print("error: need --key-hex or --in (the original APK)", file=sys.stderr)
        return EXIT_USAGE
    if args.reports is None and args.listen is None:
        print("error: need --reports (JSON lines) or --listen HOST:PORT",
              file=sys.stderr)
        return EXIT_USAGE
    if args.reports is not None and args.listen is not None:
        print("error: --reports and --listen are mutually exclusive",
              file=sys.stderr)
        return EXIT_USAGE
    if args.replication_listen is not None and args.listen is None:
        print("error: --replication-listen requires --listen", file=sys.stderr)
        return EXIT_USAGE
    if args.replication_listen is not None and args.data_dir is None:
        print("error: --replication-listen requires --data-dir (the WAL is "
              "the replication log)", file=sys.stderr)
        return EXIT_USAGE

    server = ReportServer(
        shards=args.shards,
        queue_capacity=args.queue_capacity,
        max_report_age=args.max_age,
        policy=TakedownPolicy(
            distinct_devices=args.threshold, window_seconds=args.window
        ),
        data_dir=args.data_dir,
        snapshot_every=args.snapshot_every,
    )
    if args.app not in server.apps:
        server.register_app(args.app, original_key)

    emit = _make_emitter(args.data_dir, "serve-reports.log")
    conn_stats = []
    if args.listen is not None:
        conn_stats = _serve_listen(args, server, emit)
    else:
        def _request_shutdown(signum, frame):
            raise _ShutdownRequested()

        previous = [
            signal.signal(signum, _request_shutdown)
            for signum in (signal.SIGINT, signal.SIGTERM)
        ]
        handle = sys.stdin if args.reports == "-" else open(args.reports, "r")
        try:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                server.submit(line)
                if server.queue_depth() >= args.process_every:
                    server.process()
        except _ShutdownRequested:
            emit("interrupted: draining queues, compacting the WAL...")
        finally:
            if handle is not sys.stdin:
                handle.close()
            for signum, old in zip((signal.SIGINT, signal.SIGTERM), previous):
                signal.signal(signum, old)

    server.process()
    verdict, offender = server.verdict(args.app)
    # close() compacts the WAL into a final snapshot -- an interrupted
    # run leaves the same durable state a completed one would.
    server.close()

    metrics = server.metrics.snapshot()
    tally_names = {
        "received": "reporting.received",
        "accepted": "reporting.accepted",
        "duplicate": "reporting.duplicates_dropped",
        "replayed": "reporting.rejected_replayed",
        "bad-signature": "reporting.rejected_forged",
        "malformed": "reporting.rejected_malformed",
        "unknown-app": "reporting.unknown_app",
        "dropped": "reporting.dropped_backpressure",
    }
    tallies = {
        label: metrics.get(name, 0)
        for label, name in tally_names.items()
        if metrics.get(name, 0)
    }
    emit("ingested: " + (", ".join(
        f"{k}={v}" for k, v in tallies.items()) or "nothing"))
    emit(f"verdict for {args.app}: {verdict.value}"
         + (f" (key {offender})" if offender else ""))
    if conn_stats:
        print("\nconnections:")
        for stats in conn_stats:
            print(f"  {stats.describe()}")
    print("\nmetrics:")
    print(server.metrics.render())
    return 0


def _serve_listen(args, server, emit):
    """Run the asyncio ingest service until SIGINT/SIGTERM; returns the
    per-connection stats (the server is drained but left open)."""
    import asyncio
    import signal

    from repro.reporting.net import IngestService

    host, port = args.listen
    replication = args.replication_listen

    async def _run():
        service = IngestService(
            server,
            host,
            port,
            replication_host=replication[0] if replication else None,
            replication_port=replication[1] if replication else None,
            process_every=args.process_every,
        )
        await service.start()
        ihost, iport = service.address
        # Parseable by scripts (CI smoke, tests) that bind port 0.
        emit(f"listening on {ihost}:{iport}")
        if replication is not None:
            rhost, rport = service.replication_address
            emit(f"replication on {rhost}:{rport}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-posix
                signal.signal(signum, lambda *_: stop.set())
        await stop.wait()
        emit("shutting down: draining queues, flushing followers...")
        await service.stop()
        return service

    service = asyncio.run(_run())
    return service.conn_stats


def _cmd_replica(args) -> int:
    """Follow a leader's WAL stream; optionally promote on leader exit."""
    import signal

    from repro.reporting import TakedownPolicy
    from repro.reporting.net import ReplicaFollower

    emit = _make_emitter(args.data_dir, "replica.log")
    follower = ReplicaFollower(
        args.data_dir, args.leader, expect_shards=args.shards
    )

    def _request_stop(signum, frame):
        follower.stop(timeout=0)

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _request_stop)

    emit(f"following {args.leader[0]}:{args.leader[1]} into {args.data_dir}")
    follower.run()  # blocks until leader EOF or a signal
    if follower.error is not None:
        print(f"error: replication failed: {follower.error}", file=sys.stderr)
        return EXIT_FAILURE
    emit(f"applied: {follower.applied} update(s) "
         f"({follower.snapshots} snapshot(s)) from the leader")

    if not args.promote:
        return 0
    if follower.shard_count is None:
        print("error: never reached the leader; nothing to promote",
              file=sys.stderr)
        return EXIT_FAILURE
    server = follower.promote(
        shards=args.shards or follower.shard_count,
        policy=TakedownPolicy(
            distinct_devices=args.threshold, window_seconds=args.window
        ),
    )
    server.process()
    replayed = int(server.metrics.counter("wal.replayed").value)
    emit(f"promoted: {len(list(server.apps))} app(s), "
         f"{replayed} shipped WAL record(s) replayed")
    for app_name, (verdict, offender) in sorted(server.verdicts().items()):
        emit(f"verdict for {app_name}: {verdict.value}"
             + (f" (key {offender})" if offender else ""))
    server.close()
    return 0


def _cmd_supervise(args) -> int:
    """Warm standby plus supervisor in one process.

    Follows the leader's WAL into ``--data-dir`` while probing its
    ingest port; when ``--miss-threshold`` consecutive probes fail, the
    follower is promoted automatically (epoch bump, fence, new ingest
    service) and the promoted endpoint is printed in a parseable line::

        promoted: epoch 1 on 127.0.0.1:45123

    SIGINT/SIGTERM stop supervision gracefully: a promoted server
    drains, prints its verdicts and compacts its WAL before exit.
    """
    import signal
    import threading

    from repro.reporting import TakedownPolicy
    from repro.reporting.net import ClusterSupervisor, ReplicaFollower

    emit = _make_emitter(args.data_dir, "supervise.log")
    follower = ReplicaFollower(
        args.data_dir, args.replicate_from, expect_shards=args.shards
    ).start()
    emit(f"following {args.replicate_from[0]}:{args.replicate_from[1]} "
         f"into {args.data_dir}")
    if not follower.wait_applied(1, timeout=30):
        print("error: never received the leader's bootstrap snapshot"
              + (f": {follower.error}" if follower.error else ""),
              file=sys.stderr)
        follower.stop()
        return EXIT_FAILURE

    promote_host, promote_port = args.promote_listen
    supervisor = ClusterSupervisor(
        args.leader,
        [follower],
        server_kwargs=dict(
            policy=TakedownPolicy(
                distinct_devices=args.threshold, window_seconds=args.window
            ),
            snapshot_every=args.snapshot_every,
        ),
        miss_threshold=args.miss_threshold,
        interval=args.interval,
        probe_timeout=args.probe_timeout,
        promote_host=promote_host,
        promote_port=promote_port,
    )
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    supervisor.start()
    emit(f"supervising {args.leader[0]}:{args.leader[1]} "
         f"(miss threshold {args.miss_threshold}, interval {args.interval}s)")

    announced = False
    while not stop.is_set():
        if supervisor.failovers and not announced:
            event = supervisor.event
            phost, pport = event.endpoint
            emit(f"promoted: epoch {event.epoch} on {phost}:{pport} "
                 f"(detected {event.detection_seconds:.2f}s, "
                 f"promoted {event.promotion_seconds:.2f}s, "
                 f"{event.follower_applied} applied)")
            announced = True
        if supervisor.error is not None:
            print(f"error: supervisor failed: {supervisor.error}",
                  file=sys.stderr)
            supervisor.stop()
            follower.stop()
            return EXIT_FAILURE
        stop.wait(0.1)

    supervisor.stop()
    if supervisor.promoted_handle is not None:
        verdicts = supervisor.promoted_handle.call(
            lambda s: (s.process(), s.verdicts())[1]
        )
        for app_name, (verdict, offender) in sorted(verdicts.items()):
            emit(f"verdict for {app_name}: {verdict.value}"
                 + (f" (key {offender})" if offender else ""))
        supervisor.promoted_handle.stop()
        supervisor.promoted_server.close()
    else:
        follower.stop()
        emit(f"applied: {follower.applied} update(s) from the leader; "
             "no failover needed")
    return 0


def _cmd_recover(args) -> int:
    """Rebuild a ReportServer from its WAL + snapshot and show verdicts."""
    from repro.reporting import ReportServer, TakedownPolicy

    server = ReportServer.recover(
        args.data_dir,
        shards=args.shards,
        policy=TakedownPolicy(
            distinct_devices=args.threshold, window_seconds=args.window
        ),
    )
    server.process()
    replayed = int(server.metrics.counter("wal.replayed").value)
    torn = int(server.metrics.counter("recovery.torn_records").value)
    snapshots = int(server.metrics.counter("snapshot.loads").value)
    print(f"recovered from {args.data_dir}: "
          f"{len(list(server.apps))} app(s), {replayed} WAL records replayed, "
          f"{snapshots} snapshot(s) restored, {torn} torn record(s) discarded")
    for app_name, (verdict, offender) in sorted(server.verdicts().items()):
        print(f"verdict for {app_name}: {verdict.value}"
              + (f" (key {offender})" if offender else ""))
    server.close()
    print("\nmetrics:")
    print(server.metrics.render())
    return 0


def _cmd_fleet(args) -> int:
    """Stream a synthetic device fleet through the report pipeline."""
    from repro.reporting import (
        AggregatedVerdict,
        FleetConfig,
        OutcomeModel,
        ReportServer,
        TakedownPolicy,
        run_fleet,
    )
    from repro.userside import Market

    apk = load_apk(getattr(args, "in"))
    if args.key_hex:
        original_key = args.key_hex
    elif args.original:
        original_key = load_apk(args.original).cert.fingerprint_hex()
    else:
        print("error: need --original (the genuine APK) or --key-hex",
              file=sys.stderr)
        return EXIT_USAGE
    app_name = args.app or apk.resources().app_name

    from repro.vm.sessions import SessionEngine

    engine = SessionEngine(apk, seed=args.seed, events=args.events)
    print(f"calibrating outcome model from {args.sessions} play sessions...")
    model = OutcomeModel.calibrate(
        apk, sessions=args.sessions, events=args.events, seed=args.seed,
        engine=engine,
    )
    print(f"  report rate {model.report_rate:.2f}, "
          f"bad-experience rate {model.bad_experience_rate:.2f}, "
          f"observed key {model.observed_key_hex[:16] or '(none)'}...")

    config = FleetConfig(
        devices=args.devices,
        batch_size=args.batch,
        shards=args.shards,
        seed=args.seed,
        target_reports=args.target_reports,
        duplicate_rate=args.duplicate_rate,
        forge_rate=args.forge_rate,
        transport_failure_rate=args.transport_failure_rate,
        transport=args.transport,
        real_sessions=args.real_sessions,
        policy=TakedownPolicy(
            distinct_devices=args.threshold, window_seconds=args.window
        ),
    )
    server = ReportServer(shards=config.shards, policy=config.policy)
    market = Market(seed=args.seed)
    listing = market.publish(app_name, apk)
    result = run_fleet(
        app_name, original_key, model, config,
        server=server, market=market, listing=listing,
        session_engine=engine if args.real_sessions else None,
    )
    print()
    print(result.summary())
    print("\nmarket:")
    print(market.summary())
    print("\nmetrics:")
    print(server.metrics.render())
    # Exit 1 when devices observed a foreign key but the evidence never
    # reached a takedown -- the pipeline failed at its one job.
    failed = model.observed_key_hex and result.verdict is not AggregatedVerdict.TAKEDOWN
    return 1 if failed else 0


def _cmd_chaos(args) -> int:
    """Run the seeded fault matrix and check containment invariants."""
    import json

    if args.crash_restart and args.failover:
        print("error: --crash-restart and --failover are mutually exclusive",
              file=sys.stderr)
        return EXIT_USAGE
    if args.crash_restart:
        from repro.chaos import CrashRestartConfig, run_crash_restart

        config = CrashRestartConfig(
            seed=args.seed,
            reports=args.reports,
            data_dir=args.data_dir,
        )
        report = run_crash_restart(config)
        runner = run_crash_restart
    elif args.failover:
        from repro.chaos import FailoverChaosConfig, run_failover_chaos

        config = FailoverChaosConfig(
            seed=args.seed,
            reports=args.reports,
            data_dir=args.data_dir,
        )
        report = run_failover_chaos(config)
        runner = run_failover_chaos
    else:
        from repro.chaos import ChaosConfig, run_chaos

        config = ChaosConfig(
            seed=args.seed,
            trials=args.trials,
            scale=args.scale,
            events=args.events,
            devices=args.devices,
            strict=args.strict,
            mesh=args.mesh,
        )
        report = run_chaos(config)
        runner = run_chaos
    replay_ok = True
    if args.verify_replay:
        replay_ok = runner(config).digest() == report.digest()
    if args.json:
        payload = report.to_dict()
        payload["replay_verified"] = replay_ok if args.verify_replay else None
        print(json.dumps(payload, indent=2))
    else:
        print(report.summary())
        if args.verify_replay:
            print("replay: " + ("identical" if replay_ok else "DIVERGED"))
    if not replay_ok:
        print(f"error: re-running seed {args.seed} produced a different "
              "event log", file=sys.stderr)
        return EXIT_VERIFICATION
    return EXIT_OK if report.ok else EXIT_VERIFICATION


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BombDroid reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="generate a synthetic app APK")
    build.add_argument("--name", required=True,
                       help="app name; one of the eight named apps or any string")
    build.add_argument("--category", default="Game")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--scale", type=float, default=0.5)
    build.add_argument("--out", required=True)
    build.set_defaults(func=_cmd_build)

    protect = sub.add_parser("protect", help="run the BombDroid pipeline")
    protect.add_argument("--in", required=True)
    protect.add_argument("--out", required=True)
    protect.add_argument("--key-seed", type=int, required=True,
                         help="developer signing key seed")
    protect.add_argument("--seed", type=int, default=0)
    protect.add_argument("--profiling-events", type=int, default=1500)
    protect.add_argument("--alpha", type=float, default=0.25)
    protect.add_argument("--single-trigger", action="store_true")
    protect.add_argument("--mute", action="store_true",
                         help="strategic muting after first detection")
    protect.add_argument("--strict", action="store_true",
                         help="refuse to emit an app with error-severity "
                              "verifier/lint diagnostics")
    protect.set_defaults(func=_cmd_protect)

    batch = sub.add_parser(
        "protect-batch",
        help="protect a corpus directory of .rapk files in parallel",
    )
    batch.add_argument("--corpus", required=True,
                       help="directory of .rapk files to protect")
    batch.add_argument("--out", required=True,
                       help="output directory for protected .rapk files")
    batch.add_argument("--key-seed", type=int, required=True,
                       help="developer signing key seed (whole corpus)")
    batch.add_argument("--seed", type=int, default=0,
                       help="config seed; per-app randomness derives from "
                            "this mixed with each app's content digest")
    batch.add_argument("--workers", type=_workers_arg, default=1,
                       help="worker processes (1 = serial; 'auto' sizes to "
                            "the host and degrades to serial on 1 cpu)")
    batch.add_argument("--cache-dir", default=None,
                       help="content-addressed artifact cache directory")
    batch.add_argument("--profiling-events", type=int, default=1500)
    batch.add_argument("--alpha", type=float, default=0.25)
    batch.add_argument("--strict", action="store_true",
                       help="verification gate failures fail the app "
                            "(the batch itself always completes)")
    batch.set_defaults(func=_cmd_protect_batch)

    inspect = sub.add_parser("inspect", help="summarize / disassemble an APK")
    inspect.add_argument("--in", required=True)
    inspect.add_argument("--disassemble", action="store_true")
    inspect.set_defaults(func=_cmd_inspect)

    lint = sub.add_parser(
        "lint", help="bytecode verifier + bomb-stealth lint over an APK"
    )
    lint.add_argument("--in", default=None)
    lint.add_argument("--format", choices=["human", "json", "sarif"],
                      default="human", help="report format")
    lint.add_argument("--json", action="store_true",
                      help="emit diagnostics as a JSON array "
                           "(alias for --format json)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated stealth rule ids (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.set_defaults(func=_cmd_lint)

    detect = sub.add_parser(
        "detect",
        help="static trigger analysis: rank suspicious guarded regions",
    )
    detect.add_argument("--in", required=True)
    detect.add_argument("--format", choices=["human", "json", "sarif"],
                        default="human", help="report format")
    detect.add_argument("--min-score", type=float, default=2.0,
                        help="drop findings scoring below this")
    detect.add_argument("--top", type=int, default=0,
                        help="print only the N highest-scoring findings "
                             "(0 = all)")
    detect.set_defaults(func=_cmd_detect)

    repack = sub.add_parser("repackage", help="the adversary's pipeline")
    repack.add_argument("--in", required=True)
    repack.add_argument("--out", required=True)
    repack.add_argument("--key-seed", type=int, default=666)
    repack.set_defaults(func=_cmd_repackage)

    simulate = sub.add_parser("simulate", help="play an APK on user devices")
    simulate.add_argument("--in", required=True)
    simulate.add_argument("--devices", type=int, default=10)
    simulate.add_argument("--events", type=int, default=600)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)

    attack = sub.add_parser("attack", help="run an adversary analysis")
    attack.add_argument("--in", required=True)
    attack.add_argument(
        "--attack",
        choices=["text", "symbolic", "forced", "slicing", "deletion", "static"],
        required=True,
    )
    attack.add_argument("--seed", type=int, default=0)
    attack.set_defaults(func=_cmd_attack)

    serve = sub.add_parser(
        "serve-reports",
        help="ingest signed detection reports (JSON lines) and decide takedowns",
    )
    serve.add_argument("--app", required=True, help="registered app name")
    serve.add_argument("--key-hex", default=None,
                       help="the genuine signing key fingerprint")
    serve.add_argument("--in", default=None,
                       help="original APK to read the genuine key from")
    serve.add_argument("--reports", default=None,
                       help="JSON-lines report file, or - for stdin")
    serve.add_argument("--listen", type=_parse_hostport, default=None,
                       metavar="HOST:PORT",
                       help="serve DRPT frames over TCP instead of reading "
                            "--reports (port 0 binds an ephemeral port)")
    serve.add_argument("--replication-listen", type=_parse_hostport,
                       default=None, metavar="HOST:PORT",
                       help="also stream the WAL to replica followers here "
                            "(requires --listen and --data-dir)")
    serve.add_argument("--shards", type=int, default=8)
    serve.add_argument("--threshold", type=int, default=3,
                       help="distinct devices required for a takedown")
    serve.add_argument("--window", type=float, default=3600.0,
                       help="sliding takedown window (seconds)")
    serve.add_argument("--max-age", type=float, default=900.0,
                       help="replay freshness window (seconds)")
    serve.add_argument("--queue-capacity", type=int, default=4096)
    serve.add_argument("--process-every", type=int, default=1024,
                       help="drain queues after this many pending reports")
    serve.add_argument("--data-dir", default=None,
                       help="journal accepted reports to a WAL + snapshot "
                            "in this directory (durable ingestion)")
    serve.add_argument("--snapshot-every", type=int, default=1024,
                       help="WAL appends between snapshot compactions")
    serve.set_defaults(func=_cmd_serve_reports)

    replica = sub.add_parser(
        "replica",
        help="follow a serve-reports leader's WAL stream (warm standby)",
    )
    replica.add_argument("--data-dir", required=True,
                         help="directory the shipped WAL + snapshots land in")
    replica.add_argument("--leader", type=_parse_hostport, required=True,
                         metavar="HOST:PORT",
                         help="the leader's --replication-listen address")
    replica.add_argument("--shards", type=int, default=None,
                         help="expected leader shard count (default: accept "
                              "whatever the leader announces)")
    replica.add_argument("--threshold", type=int, default=3)
    replica.add_argument("--window", type=float, default=3600.0)
    replica.add_argument("--promote", action="store_true",
                         help="when the leader goes away, recover a live "
                              "server from the followed directory and print "
                              "its verdicts (failover)")
    replica.set_defaults(func=_cmd_replica)

    supervise = sub.add_parser(
        "supervise",
        help="warm standby + supervisor: follow the leader's WAL, probe "
             "its health, promote automatically when it dies",
    )
    supervise.add_argument("--data-dir", required=True,
                           help="directory the shipped WAL + snapshots land "
                                "in (and supervise.log)")
    supervise.add_argument("--leader", type=_parse_hostport, required=True,
                           metavar="HOST:PORT",
                           help="the leader's ingest (--listen) address, "
                                "probed for health and fenced on failover")
    supervise.add_argument("--replicate-from", type=_parse_hostport,
                           required=True, metavar="HOST:PORT",
                           help="the leader's --replication-listen address")
    supervise.add_argument("--shards", type=int, default=None,
                           help="expected leader shard count (default: "
                                "accept whatever the leader announces)")
    supervise.add_argument("--threshold", type=int, default=3)
    supervise.add_argument("--window", type=float, default=3600.0)
    supervise.add_argument("--snapshot-every", type=int, default=1024)
    supervise.add_argument("--miss-threshold", type=int, default=3,
                           help="consecutive failed probes before the "
                                "leader is declared dead")
    supervise.add_argument("--interval", type=float, default=0.5,
                           help="seconds between health probes")
    supervise.add_argument("--probe-timeout", type=float, default=2.0)
    supervise.add_argument("--promote-listen", type=_parse_hostport,
                           default=("127.0.0.1", 0), metavar="HOST:PORT",
                           help="where a promoted server serves ingest "
                                "(default 127.0.0.1:0, an ephemeral port)")
    supervise.set_defaults(func=_cmd_supervise)

    recover = sub.add_parser(
        "recover",
        help="rebuild a crashed report server from its WAL + snapshot",
    )
    recover.add_argument("--data-dir", required=True,
                         help="the durable directory a previous "
                              "serve-reports --data-dir run journaled to")
    recover.add_argument("--shards", type=int, default=8,
                         help="must match the crashed server's shard count")
    recover.add_argument("--threshold", type=int, default=3)
    recover.add_argument("--window", type=float, default=3600.0)
    recover.set_defaults(func=_cmd_recover)

    fleet = sub.add_parser(
        "fleet",
        help="stream a million-device fleet through the report pipeline",
    )
    fleet.add_argument("--in", required=True, help="the (pirated) APK users run")
    fleet.add_argument("--original", default=None,
                       help="the genuine APK (source of the genuine key)")
    fleet.add_argument("--key-hex", default=None,
                       help="genuine key fingerprint (alternative to --original)")
    fleet.add_argument("--app", default=None,
                       help="app name (default: from APK resources)")
    fleet.add_argument("--devices", type=int, default=1_000_000)
    fleet.add_argument("--batch", type=int, default=50_000)
    fleet.add_argument("--shards", type=int, default=8)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--sessions", type=int, default=5,
                       help="real play sessions for outcome calibration")
    fleet.add_argument("--events", type=int, default=350,
                       help="UI events per calibration session")
    fleet.add_argument("--target-reports", type=int, default=25_000,
                       help="sample the reporting subpopulation to this size")
    fleet.add_argument("--threshold", type=int, default=3)
    fleet.add_argument("--window", type=float, default=3600.0)
    fleet.add_argument("--duplicate-rate", type=float, default=0.01)
    fleet.add_argument("--forge-rate", type=float, default=0.0)
    fleet.add_argument("--transport-failure-rate", type=float, default=0.0)
    fleet.add_argument("--real-sessions", action="store_true",
                       help="interpret a real play session for every sampled "
                            "reporter (dispatch-table VM) instead of trusting "
                            "the calibrated outcome model")
    fleet.add_argument("--transport", choices=["inproc", "tcp"],
                       default="inproc",
                       help="report delivery: in-process calls, or real "
                            "loopback sockets through the ingest service")
    fleet.set_defaults(func=_cmd_fleet)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection matrix with containment invariants",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--trials", type=int, default=25)
    chaos.add_argument("--scale", type=float, default=0.4,
                       help="generated app size factor")
    chaos.add_argument("--events", type=int, default=600,
                       help="UI events per play session")
    chaos.add_argument("--devices", type=int, default=2,
                       help="distinct pirate devices rotated across trials")
    chaos.add_argument("--strict", action="store_true",
                       help="re-raise contained failures (debugging)")
    chaos.add_argument("--mesh", action="store_true",
                       help="protect with the bomb mesh armed (cross-"
                            "referenced payloads, morphed prologues)")
    chaos.add_argument("--crash-restart", action="store_true",
                       help="run the kill-and-recover matrix against the "
                            "durable report server instead of the VM matrix")
    chaos.add_argument("--failover", action="store_true",
                       help="run the kill-the-leader matrix against the "
                            "replicated cluster: heartbeat-supervised "
                            "promotion, epoch fencing, client re-routing")
    chaos.add_argument("--reports", type=int, default=48,
                       help="stream length per crash-restart/failover trial")
    chaos.add_argument("--data-dir", default=None,
                       help="parent directory for crash-restart/failover "
                            "trial state (default: a temp dir, removed "
                            "afterwards)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    chaos.add_argument("--verify-replay", action="store_true",
                       help="run the matrix twice and require identical "
                            "replay digests")
    chaos.set_defaults(func=_cmd_chaos)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except VerificationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_VERIFICATION
    except VMError as exc:
        detail = ""
        if isinstance(exc, VMCrash) and (exc.bomb_id or exc.site):
            detail = f" (bomb={exc.bomb_id or '?'}, site={exc.site or '?'})"
        print(f"error: VM crashed: {exc}{detail}", file=sys.stderr)
        return EXIT_CRASH
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
