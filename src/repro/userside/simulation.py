"""User play sessions and the Table 3 experiment.

A :class:`PlaySession` is one user on one sampled device playing the
(repackaged) app.  ``simulate_first_triggers`` repeats the paper's
Section 8.2 protocol: play until the first bomb *fully* triggers
(outer + inner conditions), record the elapsed time, fifty runs per
app with varied device configurations, 60-minute timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.apk.package import Apk
from repro.errors import MethodNotFound, VMError
from repro.fuzzing.generators import DynodroidGenerator
from repro.vm.device import DevicePopulation
from repro.vm.events import Event
from repro.vm.runtime import Runtime


class PlaySession:
    """One user's session with the app on one device."""

    def __init__(self, apk: Apk, device, seed: int = 0) -> None:
        self._apk = apk
        self._device = device
        self._seed = seed
        # Parse and install once; restarts reuse both (the DexFile is
        # immutable under execution, and the system's package snapshot
        # does not change between process restarts).
        self._dex = apk.dex()
        self._package = apk.install_view()
        self.runtime = Runtime(
            self._dex, device=device, package=self._package, seed=seed
        )
        self._generator = DynodroidGenerator(self._dex, seed=seed)
        try:
            self.runtime.boot()
        except VMError:
            pass

    def play_until_detection(self, timeout_seconds: float) -> Optional[float]:
        """Play; return elapsed seconds at the first full bomb trigger
        (``inner_met``), or None on timeout.

        Users keep using an app that crashed (they reopen it); state
        resets, the clock does not -- matching how the human testers of
        Section 8.2 measured wall-clock time to first trigger.
        """
        runtime = self.runtime
        start = runtime.device.clock
        iterator = self._generator.events()
        while runtime.device.clock - start < timeout_seconds:
            event = next(iterator)
            try:
                runtime.dispatch(event)
            except MethodNotFound:
                runtime.device.advance(Event.DURATION)
            except VMError:
                clock = runtime.device.clock
                detected = runtime.detections
                if detected:
                    # The crash *was* the response.
                    return clock - start
                self._restart(clock)
                runtime = self.runtime
            first = self.runtime.bombs.first_time_of("inner_met")
            if first is not None:
                return self.runtime.device.clock - start
        return None

    def _restart(self, clock: float) -> None:
        previous_bombs = self.runtime.bombs
        self.runtime = Runtime(
            self._dex,
            device=self._device,
            package=self._package,
            seed=self._seed,
        )
        # Carry the bomb history across restarts for measurement.
        self.runtime.bombs.merge_from(previous_bombs)
        try:
            self.runtime.boot()
        except VMError:
            pass


@dataclass
class FirstTriggerStats:
    """Table 3 row: time to trigger the first bomb."""

    app: str
    times: List[float] = field(default_factory=list)
    failures: int = 0

    @property
    def runs(self) -> int:
        return len(self.times) + self.failures

    @property
    def min_time(self) -> float:
        return min(self.times) if self.times else float("nan")

    @property
    def max_time(self) -> float:
        return max(self.times) if self.times else float("nan")

    @property
    def avg_time(self) -> float:
        return sum(self.times) / len(self.times) if self.times else float("nan")

    @property
    def success_ratio(self) -> str:
        return f"{len(self.times)}/{self.runs}"


def simulate_first_triggers(
    apk: Apk,
    app_name: str,
    runs: int = 50,
    timeout_seconds: float = 3600.0,
    population_seed: int = 0,
) -> FirstTriggerStats:
    """The Section 8.2 protocol for one app."""
    population = DevicePopulation(seed=population_seed)
    stats = FirstTriggerStats(app=app_name)
    for run in range(runs):
        device = population.sample()
        session = PlaySession(apk, device, seed=population_seed * 1000 + run)
        elapsed = session.play_until_detection(timeout_seconds)
        if elapsed is None:
            stats.failures += 1
        else:
            stats.times.append(elapsed)
    return stats


def population_trigger_fraction(
    apk: Apk,
    real_bomb_ids: Set[str],
    users: int = 30,
    session_seconds: float = 900.0,
    population_seed: int = 0,
) -> float:
    """Fraction of bombs triggered by a whole user population.

    Backs the Section 5 claim: "given a large number of diverse users
    ... most of the logic bombs will be triggered on the user side."
    """
    population = DevicePopulation(seed=population_seed)
    triggered: Set[str] = set()
    for user in range(users):
        device = population.sample()
        session = PlaySession(apk, device, seed=population_seed * 7000 + user)
        runtime = session.runtime
        start = runtime.device.clock
        iterator = session._generator.events()
        while runtime.device.clock - start < session_seconds:
            event = next(iterator)
            try:
                runtime.dispatch(event)
            except MethodNotFound:
                runtime.device.advance(Event.DURATION)
            except VMError:
                session._restart(runtime.device.clock)
                runtime = session.runtime
        triggered |= runtime.bombs.bombs_with("inner_met") & real_bomb_ids
    return len(triggered) / len(real_bomb_ids) if real_bomb_ids else 0.0
