"""User-side simulation: the decentralized half of the scheme.

The defense's power comes from difference D1/D2: thousands of diverse
devices playing every corner of the app.  This package simulates that
population -- play sessions on sampled devices (Table 3's time-to-first
-trigger), and the aggregation channel (ratings, developer reports,
market takedown) of Section 4.2.
"""

from repro.userside.simulation import (
    PlaySession,
    FirstTriggerStats,
    simulate_first_triggers,
    population_trigger_fraction,
)
from repro.userside.aggregation import DetectionAggregator, AggregatedVerdict
from repro.userside.market import Market, Listing, InstallRecord

__all__ = [
    "PlaySession",
    "FirstTriggerStats",
    "simulate_first_triggers",
    "population_trigger_fraction",
    "DetectionAggregator",
    "AggregatedVerdict",
    "Market",
    "Listing",
    "InstallRecord",
]
