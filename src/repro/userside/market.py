"""A minimal app-market model: the ecosystem loop closing.

Sections 1 and 4.2 describe how per-device detections become ecosystem
pressure: bad ratings depress downloads, developer reports justify a
takedown request, and Google Play's Remote Application Removal wipes a
pulled app from devices that installed it ("propagating the effect of
detection from one device to others").

Two scales coexist:

* the **per-record** API (``download`` / ``rate``) keeps an
  :class:`InstallRecord` per install -- right for the small examples
  and for asserting remote removal device by device;
* the **bulk** API (``download_batch`` / ``rate_batch``) moves counters
  only, so the fleet driver (:mod:`repro.reporting.fleet`) can push
  millions of users through a listing in O(1) memory.

Randomness is explicit everywhere: the market owns a seeded RNG, and
every stochastic method accepts an ``rng`` override so callers (the
fleet driver, tests) can thread their own seeded stream through and get
reproducible runs end to end -- nothing touches the module-level
``random`` state.

Takedowns come either from a legacy :class:`DetectionAggregator` or
straight from a :class:`repro.reporting.ReportServer`'s sliding-window
verdicts (``process_server_takedowns``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apk.package import Apk
from repro.reporting.verdicts import AggregatedVerdict
from repro.userside.aggregation import DetectionAggregator


@dataclass
class Listing:
    """One app listing on the market.

    Ratings are held as (sum, count) -- a million one-star reviews from
    a fleet run cost two integers, not a list.
    """

    app_name: str
    apk: Apk
    publisher_key_hex: str
    rating_sum: int = 0
    rating_count: int = 0
    downloads: int = 0
    bulk_installs: int = 0       # active installs tracked only as a count
    taken_down: bool = False

    @property
    def average_rating(self) -> float:
        if not self.rating_count:
            return 3.0           # neutral default for an unrated listing
        return self.rating_sum / self.rating_count


@dataclass
class InstallRecord:
    """An app installed on a user device (for remote removal)."""

    device_label: str
    listing: Listing
    removed: bool = False


class Market:
    """Listings, downloads, ratings, takedowns, remote removal."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.listings: Dict[str, Listing] = {}
        self.installs: List[InstallRecord] = []

    # -- publishing ---------------------------------------------------------

    def publish(self, app_name: str, apk: Apk) -> Listing:
        """List an APK; the listing is keyed by its signing identity."""
        key = apk.cert.fingerprint_hex()
        listing = Listing(app_name=app_name, apk=apk, publisher_key_hex=key)
        self.listings[key] = listing
        return listing

    def listing_for_key(self, key_hex: str) -> Optional[Listing]:
        return self.listings.get(key_hex)

    # -- user behavior ------------------------------------------------------

    @staticmethod
    def _proceed_probability(listing: Listing) -> float:
        # 5 stars -> ~95% proceed; 1 star -> ~15%.
        return 0.15 + 0.2 * (listing.average_rating - 1)

    def download(
        self,
        device_label: str,
        listing: Listing,
        rng: Optional[random.Random] = None,
    ) -> Optional[InstallRecord]:
        """A user downloads an app -- unless it was taken down, or its
        rating has scared them off (probability scales with rating)."""
        if listing.taken_down:
            return None
        rng = rng or self._rng
        if rng.random() > self._proceed_probability(listing):
            return None
        listing.downloads += 1
        record = InstallRecord(device_label=device_label, listing=listing)
        self.installs.append(record)
        return record

    def download_batch(
        self,
        listing: Listing,
        attempts: int,
        rng: Optional[random.Random] = None,
    ) -> int:
        """``attempts`` users consider downloading; returns how many did.

        Counter-only (no per-install records): the binomial outcome is
        sampled from the supplied RNG so fleet runs stay reproducible,
        and the installs are tracked in ``listing.bulk_installs``.
        """
        if listing.taken_down or attempts <= 0:
            return 0
        rng = rng or self._rng
        probability = self._proceed_probability(listing)
        # Normal approximation of Binomial(attempts, p); exact loop for
        # small batches where the approximation is visibly coarse.
        if attempts < 64:
            installed = sum(
                1 for _ in range(attempts) if rng.random() <= probability
            )
        else:
            mean = attempts * probability
            sigma = (attempts * probability * (1.0 - probability)) ** 0.5
            installed = int(round(rng.gauss(mean, sigma)))
            installed = max(0, min(attempts, installed))
        listing.downloads += installed
        listing.bulk_installs += installed
        return installed

    def rate(self, listing: Listing, stars: int) -> None:
        if not 1 <= stars <= 5:
            raise ValueError("ratings are 1-5 stars")
        listing.rating_sum += stars
        listing.rating_count += 1

    def rate_batch(self, listing: Listing, stars: int, count: int) -> None:
        """``count`` users leave the same star rating (bulk counters)."""
        if not 1 <= stars <= 5:
            raise ValueError("ratings are 1-5 stars")
        if count < 0:
            raise ValueError("rating count cannot be negative")
        listing.rating_sum += stars * count
        listing.rating_count += count

    # -- enforcement --------------------------------------------------------

    def process_takedown_request(
        self, aggregator: DetectionAggregator
    ) -> Optional[Listing]:
        """Act on a developer's aggregated evidence.

        When the verdict is TAKEDOWN and the offending key has a live
        listing, pull it and remotely remove it from every device that
        installed it.  Returns the pulled listing, if any.
        """
        verdict, offender_key = aggregator.verdict()
        if verdict is not AggregatedVerdict.TAKEDOWN:
            return None
        return self._take_down(offender_key)

    def process_server_takedowns(self, server) -> List[Listing]:
        """Pull every listing a :class:`ReportServer` has evidence against.

        The server's sliding-window policy decides; the market acts.
        Returns the listings pulled by this call.
        """
        pulled = []
        for _, offender_key in server.takedown_candidates():
            listing = self._take_down(offender_key)
            if listing is not None:
                pulled.append(listing)
        return pulled

    def _take_down(self, offender_key: str) -> Optional[Listing]:
        listing = self.listings.get(offender_key)
        if listing is None or listing.taken_down:
            return None
        listing.taken_down = True
        # Remote Application Removal: per-record and bulk installs alike.
        for record in self.installs:
            if record.listing is listing:
                record.removed = True
        listing.bulk_installs = 0
        return listing

    # -- metrics ------------------------------------------------------------

    def active_installs(self, listing: Listing) -> int:
        return listing.bulk_installs + sum(
            1
            for record in self.installs
            if record.listing is listing and not record.removed
        )

    def summary(self) -> str:
        lines = []
        for listing in self.listings.values():
            status = "TAKEN DOWN" if listing.taken_down else "live"
            lines.append(
                f"{listing.app_name} by {listing.publisher_key_hex[:12]}...: "
                f"{listing.downloads} downloads, "
                f"{listing.average_rating:.1f} stars, {status}"
            )
        return "\n".join(lines)
