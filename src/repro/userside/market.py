"""A minimal app-market model: the ecosystem loop closing.

Sections 1 and 4.2 describe how per-device detections become ecosystem
pressure: bad ratings depress downloads, developer reports justify a
takedown request, and Google Play's Remote Application Removal wipes a
pulled app from devices that installed it ("propagating the effect of
detection from one device to others").

The model is deliberately small: listings keyed by signing key, a
download counter driven by rating, and takedown + remote-removal
mechanics the tests and examples can exercise end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.apk.package import Apk
from repro.userside.aggregation import AggregatedVerdict, DetectionAggregator


@dataclass
class Listing:
    """One app listing on the market."""

    app_name: str
    apk: Apk
    publisher_key_hex: str
    ratings: List[int] = field(default_factory=list)
    downloads: int = 0
    taken_down: bool = False

    @property
    def average_rating(self) -> float:
        return sum(self.ratings) / len(self.ratings) if self.ratings else 3.0


@dataclass
class InstallRecord:
    """An app installed on a user device (for remote removal)."""

    device_label: str
    listing: Listing
    removed: bool = False


class Market:
    """Listings, downloads, ratings, takedowns, remote removal."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.listings: Dict[str, Listing] = {}
        self.installs: List[InstallRecord] = []

    # -- publishing ---------------------------------------------------------

    def publish(self, app_name: str, apk: Apk) -> Listing:
        """List an APK; the listing is keyed by its signing identity."""
        key = apk.cert.fingerprint_hex()
        listing = Listing(app_name=app_name, apk=apk, publisher_key_hex=key)
        self.listings[key] = listing
        return listing

    def listing_for_key(self, key_hex: str) -> Optional[Listing]:
        return self.listings.get(key_hex)

    # -- user behavior ----------------------------------------------------------

    def download(self, device_label: str, listing: Listing) -> Optional[InstallRecord]:
        """A user downloads an app -- unless it was taken down, or its
        rating has scared them off (probability scales with rating)."""
        if listing.taken_down:
            return None
        # 5 stars -> ~95% proceed; 1 star -> ~15%.
        proceed_probability = 0.15 + 0.2 * (listing.average_rating - 1)
        if self._rng.random() > proceed_probability:
            return None
        listing.downloads += 1
        record = InstallRecord(device_label=device_label, listing=listing)
        self.installs.append(record)
        return record

    def rate(self, listing: Listing, stars: int) -> None:
        if not 1 <= stars <= 5:
            raise ValueError("ratings are 1-5 stars")
        listing.ratings.append(stars)

    # -- enforcement ----------------------------------------------------------------

    def process_takedown_request(
        self, aggregator: DetectionAggregator
    ) -> Optional[Listing]:
        """Act on a developer's aggregated evidence.

        When the verdict is TAKEDOWN and the offending key has a live
        listing, pull it and remotely remove it from every device that
        installed it.  Returns the pulled listing, if any.
        """
        verdict, offender_key = aggregator.verdict()
        if verdict is not AggregatedVerdict.TAKEDOWN:
            return None
        listing = self.listings.get(offender_key)
        if listing is None or listing.taken_down:
            return None
        listing.taken_down = True
        for record in self.installs:
            if record.listing is listing:
                record.removed = True
        return listing

    # -- metrics -----------------------------------------------------------------------

    def active_installs(self, listing: Listing) -> int:
        return sum(
            1
            for record in self.installs
            if record.listing is listing and not record.removed
        )

    def summary(self) -> str:
        lines = []
        for listing in self.listings.values():
            status = "TAKEN DOWN" if listing.taken_down else "live"
            lines.append(
                f"{listing.app_name} by {listing.publisher_key_hex[:12]}...: "
                f"{listing.downloads} downloads, "
                f"{listing.average_rating:.1f} stars, {status}"
            )
        return "\n".join(lines)
