"""Aggregating detection across the user base (Sections 1 and 4.2).

Individual detections become collective action through three channels:

* **ratings** -- crashes and warnings drive bad reviews, deterring
  further downloads;
* **developer reports** -- the REPORT response sends the repackaged
  app's key fingerprint home, letting the developer request a takedown;
* **remote removal** -- once a market pulls the app, the effect
  propagates to every device.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class AggregatedVerdict(enum.Enum):
    CLEAN = "clean"
    SUSPECT = "suspect"          # a few reports; below action threshold
    TAKEDOWN = "takedown"        # enough evidence for a market request


@dataclass
class DetectionAggregator:
    """Developer-side collector of user-device reports.

    ``report_threshold`` reports naming the *same* foreign key
    fingerprint justify a takedown request; a single report can be a
    fluke (user with a tampered build), many identical ones cannot.
    """

    app_name: str
    original_key_hex: str
    report_threshold: int = 3

    reports: List[str] = field(default_factory=list)
    ratings: List[int] = field(default_factory=list)
    _foreign_keys: Dict[str, int] = field(default_factory=dict)

    def ingest_report(self, report: str) -> None:
        """Parse one ``android.net.report`` message from a device."""
        self.reports.append(report)
        if "key=" in report:
            key = report.rsplit("key=", 1)[1].strip()
            if key and key != self.original_key_hex:
                self._foreign_keys[key] = self._foreign_keys.get(key, 0) + 1

    def ingest_session(self, runtime) -> None:
        """Pull reports and synthesize a rating from one user session.

        A session that saw crashes/alerts rates the app 1-2 stars; a
        clean session rates 4-5.  (The paper: "the bad rating of a
        repackaged app due to the poor user experience will discourage
        other users".)
        """
        for report in runtime.reports:
            self.ingest_report(report)
        bad_experience = bool(runtime.detections) or any(
            kind == "alert" for kind, _ in runtime.ui_effects
        )
        self.ratings.append(1 if bad_experience else 5)

    @property
    def average_rating(self) -> float:
        return sum(self.ratings) / len(self.ratings) if self.ratings else 0.0

    def verdict(self) -> Tuple[AggregatedVerdict, str]:
        """The developer's decision and the offending key (if any)."""
        if not self._foreign_keys:
            return AggregatedVerdict.CLEAN, ""
        key, count = max(self._foreign_keys.items(), key=lambda item: item[1])
        if count >= self.report_threshold:
            return AggregatedVerdict.TAKEDOWN, key
        return AggregatedVerdict.SUSPECT, key
