"""Aggregating detection across the user base (Sections 1 and 4.2).

Individual detections become collective action through three channels:

* **ratings** -- crashes and warnings drive bad reviews, deterring
  further downloads;
* **developer reports** -- the REPORT response sends the repackaged
  app's key fingerprint home, letting the developer request a takedown;
* **remote removal** -- once a market pulls the app, the effect
  propagates to every device.

Since the ``repro.reporting`` subsystem exists, this module is a thin
compatibility adapter: :class:`DetectionAggregator` keeps the original
string-ingestion API (used by the small-scale examples and tests) but
parses reports with the structured wire parser and counts them through
a single-shard :class:`~repro.reporting.server.ReportServer` with an
infinite takedown window -- the same dedup/threshold machinery the
fleet-scale backend runs, minus the signature layer (this channel is
authenticated out of band).  For anything bigger than a handful of
sessions, use :class:`repro.reporting.ReportServer` directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.reporting.server import ReportServer, TakedownPolicy
from repro.reporting.verdicts import AggregatedVerdict
from repro.reporting.wire import parse_report_text

__all__ = ["AggregatedVerdict", "DetectionAggregator"]


@dataclass
class DetectionAggregator:
    """Developer-side collector of user-device reports.

    ``report_threshold`` reports naming the *same* foreign key
    fingerprint justify a takedown request; a single report can be a
    fluke (user with a tampered build), many identical ones cannot.
    """

    app_name: str
    original_key_hex: str
    report_threshold: int = 3

    reports: List[str] = field(default_factory=list)
    ratings: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        # One logical shard, no time horizon: the legacy semantics are
        # "count reports forever", which is the degenerate case of the
        # sliding-window policy.
        self._server = ReportServer(
            shards=1,
            policy=TakedownPolicy(
                distinct_devices=self.report_threshold,
                window_seconds=math.inf,
            ),
        )
        self._server.register_app(self.app_name, self.original_key_hex)

    def ingest_report(self, report: str) -> None:
        """Parse one ``android.net.report`` message from a device.

        Structured ``repackaged:v1:`` messages are parsed field-wise;
        legacy free-form strings go through the tolerant path (free
        text containing ``key=`` no longer derails extraction).
        """
        self.reports.append(report)
        fields = parse_report_text(report)
        key = fields.get("key")
        if key and key.lower() != self.original_key_hex.lower():
            self._server.ingest_trusted(
                self.app_name,
                # The string channel carries no device identity; each
                # report votes as its own device, preserving the legacy
                # count-based threshold.
                device_id=f"legacy-{len(self.reports)}",
                observed_key_hex=key,
                bomb_id=fields.get("bomb", ""),
            )
            self._server.process()

    def ingest_session(self, runtime) -> None:
        """Pull reports and synthesize a rating from one user session.

        A session that saw crashes/alerts rates the app 1-2 stars; a
        clean session rates 4-5.  (The paper: "the bad rating of a
        repackaged app due to the poor user experience will discourage
        other users".)
        """
        for report in runtime.reports:
            self.ingest_report(report)
        bad_experience = bool(runtime.detections) or any(
            kind == "alert" for kind, _ in runtime.ui_effects
        )
        self.ratings.append(1 if bad_experience else 5)

    @property
    def average_rating(self) -> float:
        return sum(self.ratings) / len(self.ratings) if self.ratings else 0.0

    def verdict(self) -> Tuple[AggregatedVerdict, str]:
        """The developer's decision and the offending key (if any).

        Deterministic: the key with the most reports wins; equal counts
        break toward the lexicographically greatest fingerprint (never
        dict insertion order).
        """
        return self._server.verdict(self.app_name)
