"""BombDroid configuration.

Defaults follow the paper's implementation choices: α = 0.25 of
candidate methods receive artificial QCs, the top 10% of methods by
invocation count are hot and excluded, inner-trigger satisfaction
probability is drawn from [0.1, 0.2], double-trigger bombs are on, and
loops are avoided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class DetectionMethod(enum.Enum):
    """Repackaging-detection payload flavor (Section 4.1)."""

    PUBLIC_KEY = "public_key"    # compare Kr (runtime) against Ko (baked in)
    CODE_DIGEST = "code_digest"  # compare MANIFEST.MF digest against stego-hidden Do
    CODE_SCAN = "code_scan"      # hash a protected method's instruction stream


class ResponseKind(enum.Enum):
    """What happens when repackaging is detected (Section 4.2)."""

    CRASH = "crash"              # throw -> process death
    ENDLESS_LOOP = "endless_loop"
    MEMORY_LEAK = "memory_leak"
    NULL_STATIC = "null_static"  # null out an app reference; crash later
    WARN = "warn"                # alert the user via a dialog
    REPORT = "report"            # notify the developer
    SLOWDOWN = "slowdown"        # busy-wait to degrade responsiveness


@dataclass
class BombDroidConfig:
    """Knobs for one protection run."""

    seed: int = 0

    #: Fraction of candidate methods that receive an artificial QC (α).
    alpha: float = 0.25

    #: Top fraction of methods (by invocation count) excluded as hot.
    hot_fraction: float = 0.10

    #: Number of profiling events for the hot-method/entropy pass.
    profiling_events: int = 10_000

    #: Inner-trigger satisfaction probability range [lo, hi].
    inner_probability: Tuple[float, float] = (0.1, 0.2)

    #: Insert the environment-sensitive inner trigger (double-trigger
    #: bombs, Section 6).  Disable for the single-trigger ablation.
    double_trigger: bool = True

    #: Weave original body code into payloads where possible (Section 3.4).
    weave: bool = True

    #: Transform this fraction of remaining weavable QCs into bogus bombs.
    bogus_ratio: float = 0.15

    #: Avoid inserting bombs inside natural loops.
    avoid_loops: bool = True

    #: Skip hot methods entirely.  Disable for the overhead ablation.
    exclude_hot_methods: bool = True

    #: Cap on real bombs per method (overhead guard).
    max_bombs_per_method: int = 4

    #: Detection methods to rotate across bombs.
    detection_methods: Tuple[DetectionMethod, ...] = (DetectionMethod.PUBLIC_KEY,)

    #: Responses to rotate across bombs.
    responses: Tuple[ResponseKind, ...] = (
        ResponseKind.CRASH,
        ResponseKind.WARN,
        ResponseKind.REPORT,
        ResponseKind.SLOWDOWN,
    )

    #: Strategic muting (the paper's Section 10 future work): once one
    #: bomb has detected repackaging, the rest stop running detection,
    #: so an attacker probing their repackaged build sees a single bomb
    #: instead of mapping the whole minefield.
    mute_after_detection: bool = False

    #: strings.xml key under which the stego carrier is stored.
    stego_key: str = "app_tagline"

    #: Hidden digest fragment length in bytes (Section 4.1 notes a
    #: partial digest suffices).
    stego_digest_bytes: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 <= self.hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in [0, 1)")
        lo, hi = self.inner_probability
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("inner_probability must satisfy 0 < lo <= hi <= 1")
        if not self.detection_methods:
            raise ValueError("at least one detection method is required")
        if not self.responses:
            raise ValueError("at least one response kind is required")
