"""BombDroid configuration.

Defaults follow the paper's implementation choices: α = 0.25 of
candidate methods receive artificial QCs, the top 10% of methods by
invocation count are hot and excluded, inner-trigger satisfaction
probability is drawn from [0.1, 0.2], double-trigger bombs are on, and
loops are avoided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class DetectionMethod(enum.Enum):
    """Repackaging-detection payload flavor (Section 4.1)."""

    PUBLIC_KEY = "public_key"    # compare Kr (runtime) against Ko (baked in)
    CODE_DIGEST = "code_digest"  # compare MANIFEST.MF digest against stego-hidden Do
    CODE_SCAN = "code_scan"      # hash a protected method's instruction stream


class ResponseKind(enum.Enum):
    """What happens when repackaging is detected (Section 4.2)."""

    CRASH = "crash"              # throw -> process death
    ENDLESS_LOOP = "endless_loop"
    MEMORY_LEAK = "memory_leak"
    NULL_STATIC = "null_static"  # null out an app reference; crash later
    WARN = "warn"                # alert the user via a dialog
    REPORT = "report"            # notify the developer
    SLOWDOWN = "slowdown"        # busy-wait to degrade responsiveness


@dataclass
class BombDroidConfig:
    """Knobs for one protection run."""

    seed: int = 0

    #: Fraction of candidate methods that receive an artificial QC (α).
    alpha: float = 0.25

    #: Top fraction of methods (by invocation count) excluded as hot.
    hot_fraction: float = 0.10

    #: Number of profiling events for the hot-method/entropy pass.
    profiling_events: int = 10_000

    #: Inner-trigger satisfaction probability range [lo, hi].
    inner_probability: Tuple[float, float] = (0.1, 0.2)

    #: Insert the environment-sensitive inner trigger (double-trigger
    #: bombs, Section 6).  Disable for the single-trigger ablation.
    double_trigger: bool = True

    #: Weave original body code into payloads where possible (Section 3.4).
    weave: bool = True

    #: Transform this fraction of remaining weavable QCs into bogus bombs.
    bogus_ratio: float = 0.15

    #: Avoid inserting bombs inside natural loops.
    avoid_loops: bool = True

    #: Skip hot methods entirely.  Disable for the overhead ablation.
    exclude_hot_methods: bool = True

    #: Cap on real bombs per method (overhead guard).
    max_bombs_per_method: int = 4

    #: Detection methods to rotate across bombs.
    detection_methods: Tuple[DetectionMethod, ...] = (DetectionMethod.PUBLIC_KEY,)

    #: Responses to rotate across bombs.
    responses: Tuple[ResponseKind, ...] = (
        ResponseKind.CRASH,
        ResponseKind.WARN,
        ResponseKind.REPORT,
        ResponseKind.SLOWDOWN,
    )

    #: Strategic muting (the paper's Section 10 future work): once one
    #: bomb has detected repackaging, the rest stop running detection,
    #: so an attacker probing their repackaged build sees a single bomb
    #: instead of mapping the whole minefield.
    mute_after_detection: bool = False

    #: strings.xml key under which the stego carrier is stored.
    stego_key: str = "app_tagline"

    #: Hidden digest fragment length in bytes (Section 4.1 notes a
    #: partial digest suffices).
    stego_digest_bytes: int = 8

    #: ARMAND-style bomb mesh (repro.core.mesh).  Opt-in: when off, the
    #: protection pipeline draws the exact same rng stream and emits
    #: byte-identical output as before the mesh existed, keeping the
    #: Table 2/3/5 numbers and the artifact cache stable.
    mesh: bool = False

    #: Cross-reference topology over real bombs: "ring" links each bomb
    #: to its successors on a shuffled cycle; "k_regular" draws
    #: ``mesh_degree`` random distinct peers per bomb.
    mesh_topology: str = "ring"

    #: Shape-guard out-degree per bomb (both topologies).
    mesh_degree: int = 1

    #: Morph bomb prologues through the per-app shape library (mesh
    #: runs only).
    mesh_morph_prologues: bool = True

    #: Anti-analysis probes OR-combined into inner triggers (mesh runs
    #: only); drawn per bomb from this pool.
    mesh_probe_kinds: Tuple[str, ...] = ("debugger", "hooks")

    #: Draw delayed/probabilistic response plans (mesh runs only).
    mesh_delayed_responses: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 <= self.hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in [0, 1)")
        lo, hi = self.inner_probability
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("inner_probability must satisfy 0 < lo <= hi <= 1")
        if not self.detection_methods:
            raise ValueError("at least one detection method is required")
        if not self.responses:
            raise ValueError("at least one response kind is required")
        if self.mesh_topology not in ("ring", "k_regular"):
            raise ValueError("mesh_topology must be 'ring' or 'k_regular'")
        if self.mesh_degree < 1:
            raise ValueError("mesh_degree must be >= 1")
        if self.mesh:
            unknown = set(self.mesh_probe_kinds) - {"debugger", "hooks"}
            if unknown:
                raise ValueError(f"unknown probe kind(s): {sorted(unknown)}")
