"""Site transformation: rewriting qualified conditions into logic bombs.

This module owns the bytecode surgery.  For every bomb the injected
*outer* shape is identical (Listing 3 of the paper)::

    rH   = bomb.hash(X, salt, id)          # Hash(X | salt)
    if  !str.equals(rH, Hc):  goto <no-match continuation>
    rK   = bomb.derive(X, salt)            # key only exists when X == c
    blob = bomb.decrypt(CT, rK, id)        # wrong key -> crash
    arr  = pack(<live registers of the woven body>)
    res  = bomb.load_run(blob, "Bomb$id.run", arr, id)
    unpack(res); dispatch on control slot  # fall through / return

Shapes handled:

* **weavable equality-falls-through** (``if_ne X,c,@skip`` and the
  string-equals + ``if_eqz`` pattern): branch *and body* are removed;
  the body travels inside the encrypted payload (code weaving);
* **equality-jumps** (``if_eq``, boolean tests): payload-only bomb, the
  original body stays at its label;
* **switch cases**: the matched key is removed from the table and the
  bomb routes control to the case label (optionally weaving the case
  body when only the switch references it);
* **artificial QCs**: a fresh ``sget field; <bomb>`` block inserted at a
  safe location.

The constant ``c`` is erased from the method (the defining CONST turns
into NOP) whenever no other instruction reads it.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.liveness import live_registers_for_region
from repro.analysis.qualified_conditions import QCKind, QualifiedCondition
from repro.analysis.regions import BodyRegion
from repro.core.config import BombDroidConfig, DetectionMethod, ResponseKind
from repro.core.inner_triggers import InnerCondition, ProbedCondition
from repro.core.mesh import (
    MeshPlanner,
    PendingSite,
    PrologueMorph,
    PrologueShape,
    decoy_hex_for,
)
from repro.core.payloads import (
    DetectionSpec,
    PayloadSpec,
    build_payload_dex,
    encrypt_payload,
)
from repro.core.stats import Bomb, BombOrigin
from repro.core.weaving import prepare_woven_body, referenced_registers
from repro.crypto import Salt, hash_constant
from repro.dex import instructions as ins
from repro.dex.instructions import Instr, Label
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import Op
from repro.errors import InstrumentationError


class MethodEditor:
    """Splice-based editing of one method with fresh labels/registers.

    ``label_ns`` namespaces generated labels (the bomb id in practice)
    so labels are unique within a method *and* deterministic: a
    process-global counter here would make repeated ``protect()`` calls
    emit different bytecode for the same input, defeating byte-identical
    caching and parallel/serial parity.
    """

    def __init__(self, method: DexMethod, label_ns: str = "bd") -> None:
        self.method = method
        self._label_ns = label_ns
        self._label_counter = 0

    def reg(self) -> int:
        return self.method.grow_registers(1)

    def regs(self, count: int) -> List[int]:
        return [self.reg() for _ in range(count)]

    def fresh_label(self, hint: str = "bd") -> str:
        self._label_counter += 1
        return f"__{self._label_ns}_{hint}_{self._label_counter}"

    def splice(self, start: int, end: int, replacement: Sequence[Instr]) -> None:
        """Replace instructions ``[start, end)`` with ``replacement``."""
        if not 0 <= start <= end <= len(self.method.instructions):
            raise InstrumentationError(f"bad splice range [{start}, {end})")
        self.method.instructions[start:end] = list(replacement)
        self.method.invalidate()

    def insert(self, pc: int, block: Sequence[Instr]) -> None:
        self.splice(pc, pc, block)

    def nop(self, pc: int) -> None:
        self.splice(pc, pc + 1, [Instr(Op.NOP)])


@dataclass
class PayloadBuild:
    """Everything `_make_payload` produced for one bomb."""

    spec: PayloadSpec
    ciphertext: bytes
    detection: Optional[DetectionMethod]
    response: Optional[ResponseKind]
    inner: Optional[object]          # InnerCondition or ProbedCondition


@dataclass
class BombMaterials:
    """The cryptographic identity of one bomb."""

    bomb_id: str
    salt: Salt
    hc_hex: str
    payload_class: str

    @property
    def salt_hex(self) -> str:
        return self.salt.value.hex()

    @property
    def entry(self) -> str:
        return f"{self.payload_class}.run"


class Instrumenter:
    """Performs all bomb insertions for one app."""

    def __init__(
        self,
        dex: DexFile,
        config: BombDroidConfig,
        rng: random.Random,
        app_name: str,
        original_key_hex: str,
        scan_targets: Sequence[Tuple[str, str]] = (),
        app_static_fields: Sequence[str] = (),
        mute_flag: Optional[str] = None,
        mesh_planner: Optional[MeshPlanner] = None,
    ) -> None:
        self._dex = dex
        self._config = config
        self._rng = rng
        self._app_name = app_name
        self._original_key_hex = original_key_hex
        #: (method name, expected hash) candidates for code-scan bombs.
        self._scan_targets = list(scan_targets)
        self._app_static_fields = list(app_static_fields)
        self._mute_flag = mute_flag
        self._counter = itertools.count(1)
        self._detection_cycle = itertools.cycle(config.detection_methods)
        self._response_cycle = itertools.cycle(config.responses)
        #: Mesh runs only: morph/probe/plan source plus the sites the
        #: second weaving pass will revisit.  ``None`` keeps the rng
        #: stream and emitted bytes identical to the pre-mesh pipeline.
        self._mesh = mesh_planner
        self.pending_sites: List[PendingSite] = []

    # ------------------------------------------------------------------
    # materials
    # ------------------------------------------------------------------

    def _materials(self, constant) -> BombMaterials:
        index = next(self._counter)
        bomb_id = f"b{index:03d}"
        salt = Salt.from_seed(self._rng.getrandbits(60))
        return BombMaterials(
            bomb_id=bomb_id,
            salt=salt,
            hc_hex=hash_constant(constant, salt).hex(),
            payload_class=f"Bomb${bomb_id}",
        )

    @staticmethod
    def _region_packing(method, start: int, end: int, body):
        """(all_referenced, packed, reg_map, slot_locals) for a region.

        ``packed`` is the subset of referenced registers that must
        travel through the array (live-in values and live-out defs per
        :func:`live_registers_for_region`); the rest are payload-local
        temporaries.  Falls back to packing everything if the liveness
        computation fails.
        """
        from repro.core.weaving import referenced_registers

        referenced = sorted(referenced_registers(body))
        try:
            packed = sorted(live_registers_for_region(method, start, end))
        except Exception:
            packed = list(referenced)
        packed = [reg for reg in packed if reg in set(referenced)] or []
        reg_map = {reg: 1 + i for i, reg in enumerate(referenced)}
        slot_locals = tuple(reg_map[reg] for reg in packed)
        return referenced, packed, reg_map, slot_locals

    def _make_payload(
        self,
        materials: BombMaterials,
        constant,
        slots: int,
        woven_body: Sequence[Instr],
        real: bool,
        inner: Optional[InnerCondition],
        local_count: Optional[int] = None,
        slot_locals: Optional[Tuple[int, ...]] = None,
    ) -> PayloadBuild:
        """Build, serialize and encrypt the payload."""
        detection_spec = None
        detection = response = None
        null_target = None
        response_plan = None
        if real:
            detection = next(self._detection_cycle)
            response = next(self._response_cycle)
            detection_spec = self._detection_spec(detection)
            if detection_spec is None:
                # Fall back to public-key comparison when e.g. no scan
                # target is available.
                detection = DetectionMethod.PUBLIC_KEY
                detection_spec = self._detection_spec(detection)
            if response is ResponseKind.NULL_STATIC:
                if self._app_static_fields:
                    null_target = self._rng.choice(sorted(self._app_static_fields))
                else:
                    response = ResponseKind.CRASH
            if self._mesh is not None:
                # Mesh: delayed/probabilistic detection response plus
                # anti-analysis probes OR-ed into the inner trigger.
                response_plan = self._mesh.plan_response(response)
                probes = self._mesh.choose_probes()
                if probes:
                    inner = ProbedCondition(inner, probes)
        spec = PayloadSpec(
            bomb_id=materials.bomb_id,
            payload_class=materials.payload_class,
            slots=slots,
            app_name=self._app_name,
            inner=inner if real else None,
            detection=detection_spec,
            response=response,
            woven_body=woven_body,
            null_target=null_target,
            mute_flag=self._mute_flag if real else None,
            local_count=local_count,
            slot_locals=slot_locals,
            response_plan=response_plan,
        )
        ciphertext = encrypt_payload(build_payload_dex(spec), constant, materials.salt)
        return PayloadBuild(
            spec=spec,
            ciphertext=ciphertext,
            detection=detection,
            response=response,
            inner=inner if real else None,
        )

    def _detection_spec(self, method: DetectionMethod) -> Optional[DetectionSpec]:
        if method is DetectionMethod.PUBLIC_KEY:
            return DetectionSpec(
                method=method, original_key_hex=self._original_key_hex
            )
        if method is DetectionMethod.CODE_DIGEST:
            return DetectionSpec(
                method=method,
                stego_key=self._config.stego_key,
                stego_digest_bytes=self._config.stego_digest_bytes,
            )
        if method is DetectionMethod.CODE_SCAN:
            if not self._scan_targets:
                return None
            target, expected = self._rng.choice(self._scan_targets)
            return DetectionSpec(
                method=method, scan_target=target, scan_expected_hex=expected
            )
        raise InstrumentationError(f"unhandled detection method {method!r}")

    # ------------------------------------------------------------------
    # the shared outer shape
    # ------------------------------------------------------------------

    def _invoke_name(self, name: str, morph: Optional[PrologueMorph]) -> str:
        """Canonical framework symbol, or the per-app alias for aliased
        morphs (resolved back by the runtime through the alias key the
        protector ships in strings.xml)."""
        if morph is not None and morph.use_alias and self._mesh is not None:
            return self._mesh.alias_of(name)
        return name

    def _emit_invocation(
        self,
        editor: MethodEditor,
        var_reg: int,
        materials: BombMaterials,
        ciphertext: bytes,
        live_regs: Sequence[int],
        no_match_label: str,
        match_exit_label: str,
        morph: Optional[PrologueMorph] = None,
    ) -> List[Instr]:
        """The outer-trigger prologue as an instruction list.

        ``live_regs`` are the caller registers travelling through the
        payload array, in slot order.  ``no_match_label`` is where
        control goes when the hash check fails; ``match_exit_label``
        where it resumes after a payload run that requested
        fall-through.

        With no ``morph`` this is exactly the Listing-3 shape; mesh
        runs draw per-bomb variants from the shape library (all
        semantically identical: the payload runs iff
        ``Hash(X|salt) == Hc``).  Only the head varies -- the hash
        invoke's argument order and the decrypt/dispatch tail stay
        canonical so the verifier and linter reason about one protocol.
        """
        r = len(live_regs)
        (
            r_salt, r_id, r_hash, r_hc, r_eq, r_key, r_ct, r_blob,
            r_len, r_arr, r_idx, r_entry, r_res, r_ctl, r_one, r_rv,
        ) = editor.regs(16)
        call = lambda name: self._invoke_name(name, morph)  # noqa: E731
        shape = morph.shape if morph is not None else PrologueShape.CLASSIC

        if shape is PrologueShape.SWAPPED:
            # Operand-order swap: id const first, equals args reversed.
            head = [
                ins.const(r_id, materials.bomb_id),
                ins.const(r_salt, materials.salt_hex),
                ins.invoke(r_hash, call("bomb.hash"), (var_reg, r_salt, r_id)),
                ins.const(r_hc, materials.hc_hex),
                ins.invoke(r_eq, "java.str.equals", (r_hc, r_hash)),
                ins.if_eqz(r_eq, no_match_label),
            ]
        elif shape is PrologueShape.SPLIT:
            # Hc compared in two substring halves; the first live
            # if_eqz lands six instructions after the hash invoke,
            # outside the published stripper's five-slot window.
            r_lo, r_mid, r_hi, r_half, r_hc2, r_eq2 = editor.regs(6)
            head = [
                ins.const(r_salt, materials.salt_hex),
                ins.const(r_id, materials.bomb_id),
                ins.invoke(r_hash, call("bomb.hash"), (var_reg, r_salt, r_id)),
                ins.const(r_hc, materials.hc_hex[:20]),
                ins.const(r_lo, 0),
                ins.const(r_mid, 20),
                ins.invoke(r_half, "java.str.substring", (r_hash, r_lo, r_mid)),
                ins.invoke(r_eq, "java.str.equals", (r_half, r_hc)),
                ins.if_eqz(r_eq, no_match_label),
                ins.const(r_hc2, materials.hc_hex[20:]),
                ins.const(r_hi, 40),
                ins.invoke(r_half, "java.str.substring", (r_hash, r_mid, r_hi)),
                ins.invoke(r_eq2, "java.str.equals", (r_half, r_hc2)),
                ins.if_eqz(r_eq2, no_match_label),
            ]
        elif shape is PrologueShape.DECOY:
            # Dead decoy compare first: Hash(X|salt) == decoy implies
            # X != c, so branching to no-match is semantically exact --
            # and the live if_eqz is pushed out of the strip window
            # (the in-window branch is an if_nez the stripper ignores).
            r_decoy, r_dq = editor.regs(2)
            head = [
                ins.const(r_salt, materials.salt_hex),
                ins.const(r_id, materials.bomb_id),
                ins.invoke(r_hash, call("bomb.hash"), (var_reg, r_salt, r_id)),
                ins.const(r_decoy, decoy_hex_for(materials.hc_hex)),
                ins.invoke(r_dq, "java.str.equals", (r_hash, r_decoy)),
                ins.if_nez(r_dq, no_match_label),
                ins.const(r_hc, materials.hc_hex),
                ins.invoke(r_eq, "java.str.equals", (r_hash, r_hc)),
                ins.if_eqz(r_eq, no_match_label),
            ]
        else:
            head = [
                ins.const(r_salt, materials.salt_hex),
                ins.const(r_id, materials.bomb_id),
                ins.invoke(r_hash, call("bomb.hash"), (var_reg, r_salt, r_id)),
                ins.const(r_hc, materials.hc_hex),
                ins.invoke(r_eq, "java.str.equals", (r_hash, r_hc)),
                ins.if_eqz(r_eq, no_match_label),
            ]

        out: List[Instr] = head + [
            ins.invoke(r_key, call("bomb.derive"), (var_reg, r_salt)),
            ins.const(r_ct, ciphertext),
            ins.invoke(r_blob, call("bomb.decrypt"), (r_ct, r_key, r_id)),
            ins.const(r_len, r + 2),
            ins.new_array(r_arr, r_len),
        ]
        for slot, reg in enumerate(live_regs):
            out.append(ins.const(r_idx, slot))
            out.append(ins.aput(reg, r_arr, r_idx))
        out.append(ins.const(r_entry, materials.entry))
        out.append(
            ins.invoke(r_res, call("bomb.load_run"), (r_blob, r_entry, r_arr, r_id))
        )
        for slot, reg in enumerate(live_regs):
            out.append(ins.const(r_idx, slot))
            out.append(ins.aget(reg, r_res, r_idx))
        out.append(ins.const(r_idx, r))
        out.append(ins.aget(r_ctl, r_res, r_idx))
        return_value = editor.fresh_label("retv")
        out.append(ins.if_eqz(r_ctl, match_exit_label))
        out.append(ins.const(r_one, 1))
        out.append(ins.if_eq(r_ctl, r_one, return_value))
        out.append(ins.ret_void())
        out.append(Label(return_value))
        out.append(ins.const(r_idx, r + 1))
        out.append(ins.aget(r_rv, r_res, r_idx))
        out.append(ins.ret(r_rv))
        return out

    # ------------------------------------------------------------------
    # shape transforms
    # ------------------------------------------------------------------

    def transform_weavable(
        self,
        method: DexMethod,
        qc: QualifiedCondition,
        region: BodyRegion,
        inner: Optional[InnerCondition],
        real: bool = True,
    ) -> Bomb:
        """Equality-falls-through QC with a weavable body (Case A)."""
        if qc.kind is QCKind.SWITCH_CASE:
            return self._transform_switch(method, qc, region, inner, real)

        first_pc = qc.compare_pc if qc.compare_pc is not None else qc.branch_pc
        if qc.compare_pc is not None and qc.branch_pc != qc.compare_pc + 1:
            raise InstrumentationError("string compare and branch not adjacent")

        materials = self._materials(qc.const_value)
        editor = MethodEditor(method, label_ns=materials.bomb_id)
        body = method.instructions[region.start : region.end]
        referenced, packed, reg_map, slot_locals = self._region_packing(
            method, region.start, region.end, body
        )
        woven = prepare_woven_body(
            body,
            region.exit_label,
            reg_map=reg_map,
            label_prefix=f"w{materials.bomb_id}_",
        )
        built = self._make_payload(
            materials, qc.const_value, len(packed), woven, real, inner,
            local_count=len(referenced), slot_locals=slot_locals,
        )
        morph = self._next_morph()
        block = self._emit_invocation(
            editor,
            qc.var_reg,
            materials,
            built.ciphertext,
            packed,
            no_match_label=region.exit_label,
            match_exit_label=region.exit_label,
            morph=morph,
        )
        editor.splice(first_pc, region.end, block)
        erased = qc.const_removable and qc.const_def_pc is not None
        if erased:
            editor.nop(qc.const_def_pc)
        method.validate()
        self._note_site(materials, method, built, qc.const_value)
        return self._record(
            materials, method, qc, real, woven=True, detection=built.detection,
            response=built.response, inner=built.inner, const_erased=erased,
            packed_regs=tuple(packed), morph=morph,
        )

    def transform_payload_only(
        self,
        method: DexMethod,
        qc: QualifiedCondition,
        inner: Optional[InnerCondition],
        real: bool = True,
    ) -> Bomb:
        """Equality-jumps or non-weavable QC (Case B): body stays put."""
        if qc.kind is QCKind.SWITCH_CASE:
            return self._transform_switch(method, qc, None, inner, real)

        materials = self._materials(qc.const_value)
        editor = MethodEditor(method, label_ns=materials.bomb_id)
        built = self._make_payload(
            materials, qc.const_value, 0, (), real, inner
        )
        morph = self._next_morph()
        branch = method.instructions[qc.branch_pc]

        if qc.equal_jumps:
            # if_eq X, c, @body  ->  bomb; match -> @body, miss -> fall on.
            after = editor.fresh_label("after")
            block = self._emit_invocation(
                editor, qc.var_reg, materials, built.ciphertext, (),
                no_match_label=after, match_exit_label=branch.target,
                morph=morph,
            )
            block.append(Label(after))
            editor.splice(qc.branch_pc, qc.branch_pc + 1, block)
        else:
            # if_ne X, c, @skip  ->  miss -> @skip, match -> payload then
            # fall into the original body.
            miss = editor.fresh_label("miss")
            cont = editor.fresh_label("cont")
            block = self._emit_invocation(
                editor, qc.var_reg, materials, built.ciphertext, (),
                no_match_label=miss, match_exit_label=cont,
                morph=morph,
            )
            block.append(Label(miss))
            block.append(ins.goto(branch.target))
            block.append(Label(cont))
            editor.splice(qc.branch_pc, qc.branch_pc + 1, block)

        # The constant may only be erased when nothing still reads it.
        # In the payload-only string shape the compare INVOKE survives
        # (only the zero-test branch was replaced), so the constant
        # register is still consumed there.
        erased = (
            qc.const_removable
            and qc.const_def_pc is not None
            and qc.compare_pc is None
        )
        if erased:
            editor.nop(qc.const_def_pc)
        method.validate()
        self._note_site(materials, method, built, qc.const_value)
        return self._record(
            materials, method, qc, real, woven=False, detection=built.detection,
            response=built.response, inner=built.inner, const_erased=erased,
            morph=morph,
        )

    def _transform_switch(
        self,
        method: DexMethod,
        qc: QualifiedCondition,
        region: Optional[BodyRegion],
        inner: Optional[InnerCondition],
        real: bool,
    ) -> Bomb:
        """Switch-case QC: remove the key, route via the bomb (Case E)."""
        switch_pc = qc.branch_pc
        switch = method.instructions[switch_pc]
        case_label = switch.value[qc.case_key]

        materials = self._materials(qc.const_value)
        editor = MethodEditor(method, label_ns=materials.bomb_id)
        woven: Sequence[Instr] = ()
        packed: List[int] = []
        referenced: List[int] = []
        slot_locals: Tuple[int, ...] = ()
        if region is not None:
            body = method.instructions[region.start : region.end]
            referenced, packed, reg_map, slot_locals = self._region_packing(
                method, region.start, region.end, body
            )
            woven = prepare_woven_body(
                body,
                region.exit_label,
                reg_map=reg_map,
                label_prefix=f"w{materials.bomb_id}_",
            )
        built = self._make_payload(
            materials, qc.const_value, len(packed), woven, real, inner,
            local_count=len(referenced), slot_locals=slot_locals,
        )
        morph = self._next_morph()

        # Splice the (later) region first so the switch pc stays valid.
        if region is not None:
            editor.splice(region.start, region.end, [])

        do_switch = editor.fresh_label("doswitch")
        if region is not None:
            exit_label = region.exit_label or do_switch
        else:
            exit_label = case_label
        block = self._emit_invocation(
            editor, qc.var_reg, materials, built.ciphertext, packed,
            no_match_label=do_switch, match_exit_label=exit_label,
            morph=morph,
        )
        block.append(Label(do_switch))
        new_table = {k: v for k, v in switch.value.items() if k != qc.case_key}
        if new_table:
            block.append(ins.switch(switch.a, new_table))
        editor.splice(switch_pc, switch_pc + 1, block)
        method.validate()
        self._note_site(materials, method, built, qc.const_value)
        return self._record(
            materials, method, qc, real, woven=region is not None,
            detection=built.detection, response=built.response, inner=built.inner,
            packed_regs=tuple(packed), morph=morph,
        )

    def insert_artificial(
        self,
        method: DexMethod,
        pc: int,
        field_name: str,
        constant,
        inner: Optional[InnerCondition],
    ) -> Bomb:
        """Insert an artificial QC bomb at ``pc`` testing a static field."""
        materials = self._materials(constant)
        editor = MethodEditor(method, label_ns=materials.bomb_id)
        built = self._make_payload(
            materials, constant, 0, (), True, inner
        )
        morph = self._next_morph()
        var_reg = editor.reg()
        after = editor.fresh_label("after")
        block: List[Instr] = [ins.sget(var_reg, field_name)]
        block += self._emit_invocation(
            editor, var_reg, materials, built.ciphertext, (),
            no_match_label=after, match_exit_label=after,
            morph=morph,
        )
        block.append(Label(after))
        editor.insert(pc, block)
        method.validate()
        self._note_site(materials, method, built, constant)
        inner = built.inner
        bomb = Bomb(
            bomb_id=materials.bomb_id,
            method=method.qualified_name,
            origin=BombOrigin.ARTIFICIAL,
            strength=_strength_of(constant),
            const_value=constant,
            salt_hex=materials.salt_hex,
            hc_hex=materials.hc_hex,
            payload_class=materials.payload_class,
            woven=False,
            detection=built.detection,
            response=built.response,
            inner_description=inner.describe() if inner else "",
            inner_probability=inner.probability() if inner else 1.0,
            prologue_shape=morph.describe() if morph else "classic",
        )
        return bomb

    # ------------------------------------------------------------------

    def _next_morph(self) -> Optional[PrologueMorph]:
        """Draw a prologue variant; ``None`` (pure Listing 3) unmeshed."""
        return self._mesh.next_morph() if self._mesh is not None else None

    def _note_site(
        self,
        materials: BombMaterials,
        method: DexMethod,
        built: PayloadBuild,
        constant,
    ) -> None:
        """Remember a real bomb for the mesh's second weaving pass."""
        if self._mesh is None or built.spec.detection is None:
            return
        self.pending_sites.append(
            PendingSite(
                bomb_id=materials.bomb_id,
                method_name=method.qualified_name,
                constant=constant,
                salt=materials.salt,
                spec=built.spec,
                ciphertext=built.ciphertext,
            )
        )

    def _record(
        self,
        materials: BombMaterials,
        method: DexMethod,
        qc: QualifiedCondition,
        real: bool,
        woven: bool,
        detection,
        response,
        inner,
        const_erased: bool = False,
        packed_regs: Tuple[int, ...] = (),
        morph: Optional[PrologueMorph] = None,
    ) -> Bomb:
        return Bomb(
            bomb_id=materials.bomb_id,
            method=method.qualified_name,
            origin=BombOrigin.EXISTING if real else BombOrigin.BOGUS,
            strength=qc.strength,
            const_value=qc.const_value,
            salt_hex=materials.salt_hex,
            hc_hex=materials.hc_hex,
            payload_class=materials.payload_class,
            woven=woven,
            detection=detection,
            response=response,
            inner_description=inner.describe() if (inner and real) else "",
            inner_probability=inner.probability() if (inner and real) else 1.0,
            const_erased=const_erased,
            packed_regs=packed_regs,
            prologue_shape=morph.describe() if morph else "classic",
        )


def _strength_of(value):
    from repro.analysis.qualified_conditions import Strength

    return Strength.of_value(value)
