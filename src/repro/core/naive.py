"""The naive logic-bomb baseline (Listing 2 of the paper).

``if (X == c) { repackaging detection }`` -- no hashing, no encryption,
no weaving.  The detection payload sits in cleartext inside the guarded
branch.  This is the strawman Section 3.1 dismisses: symbolic execution
solves the trigger, forced execution runs the payload directly, text
search finds ``get_public_key``, and deleting the branch is free.

Implemented so the attack suite can demonstrate all of that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.analysis.qualified_conditions import find_qualified_conditions
from repro.apk.package import Apk, build_apk
from repro.crypto import RSAKeyPair
from repro.dex import instructions as ins
from repro.dex.instructions import Instr, Label
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import Op


@dataclass
class NaiveSite:
    """Ground truth for one planted bomb, in *final* (post-insertion)
    instruction coordinates.

    ``branch_pc`` is the qualified condition's branch; the detection
    block occupies ``[start, end)`` right after it.  A static detector
    "localizes" the bomb when it flags this method at ``branch_pc`` or
    anywhere inside the inserted block.
    """

    method: str
    branch_pc: int
    start: int
    end: int

    def covers(self, method: str, pc: int) -> bool:
        return method == self.method and (
            pc == self.branch_pc or self.start <= pc < self.end
        )


@dataclass
class NaiveReport:
    """Where naive bombs were planted.

    ``sites`` keeps the legacy ``method@pc`` strings (pre-insertion
    branch pcs, in insertion order); ``placements`` carries the
    adjusted coordinates evaluation code should use.
    """

    sites: List[str] = field(default_factory=list)
    placements: List[NaiveSite] = field(default_factory=list)


class NaiveProtector:
    """Plants cleartext detection inside existing qualified conditions."""

    def __init__(self, seed: int = 0, max_sites: int = 40) -> None:
        self._seed = seed
        self._max_sites = max_sites

    def protect(self, apk: Apk, developer_key: RSAKeyPair) -> Tuple[Apk, NaiveReport]:
        dex = apk.dex()
        resources = apk.resources().copy()
        original_key_hex = apk.cert.fingerprint_hex()
        report = NaiveReport()

        for method in sorted(dex.iter_methods(), key=lambda m: m.qualified_name):
            if len(report.sites) >= self._max_sites:
                break
            qcs = [
                qc for qc in find_qualified_conditions(method)
                if not qc.equal_jumps and qc.kind.value != "switch_case"
            ]
            # Bottom-up so earlier pcs stay valid.
            inserted: List[int] = []
            block_len = 0
            for qc in sorted(qcs, key=lambda q: -q.branch_pc):
                if len(report.sites) >= self._max_sites:
                    break
                block = self._detection_block(method, original_key_hex)
                block_len = len(block)
                # Insert right after the branch: runs exactly when the
                # original equality held.
                method.instructions[qc.branch_pc + 1 : qc.branch_pc + 1] = block
                method.invalidate()
                method.validate()
                report.sites.append(f"{method.qualified_name}@{qc.branch_pc}")
                inserted.append(qc.branch_pc)
            # Each bottom-up insertion shifts every *higher* site by one
            # block length; record final coordinates for evaluation.
            for original_pc in sorted(inserted):
                below = sum(1 for other in inserted if other < original_pc)
                adjusted = original_pc + block_len * below
                report.placements.append(
                    NaiveSite(
                        method=method.qualified_name,
                        branch_pc=adjusted,
                        start=adjusted + 1,
                        end=adjusted + 1 + block_len,
                    )
                )

        dex.validate()
        return build_apk(dex, resources, developer_key), report

    @staticmethod
    def _detection_block(method: DexMethod, key_hex: str) -> List[Instr]:
        base = method.grow_registers(4)
        current, original, same, message = range(base, base + 4)
        ok = f"__naive_ok_{base}_{method.name}"
        return [
            ins.invoke(current, "android.pm.get_public_key", ()),
            ins.const(original, key_hex),
            ins.invoke(same, "java.str.equals", (current, original)),
            Instr(Op.IF_NEZ, a=same, target=ok),
            ins.const(message, "naive bomb: repackaging detected"),
            ins.throw(message),
            Label(ok),
        ]
