"""BombDroid: the paper's primary contribution.

The pipeline (Fig. 1) transforms a signed APK into a protected, unsigned
APK whose code is laced with cryptographically obfuscated logic bombs:

1. unpack the APK, extract the public key from CERT.RSA;
2. profile hot methods and field entropy (Dynodroid + Traceview role);
3. discover existing qualified conditions and construct artificial
   ones in candidate methods;
4. for each site build a double-trigger bomb: the outer condition is
   hashed (``Hash(X|salt) == Hc``), the payload (inner environment
   trigger + repackaging detection + response + woven original code) is
   AES-encrypted under ``KDF(c, salt)`` and the key constant is removed
   from the code;
5. optionally add bogus bombs; re-serialize, hide digests in
   strings.xml, and package.

Public API::

    from repro.core import BombDroid, BombDroidConfig
    protected_apk, report = BombDroid(BombDroidConfig(seed=1)).protect(apk, developer_key)
"""

from repro.core.config import BombDroidConfig, DetectionMethod, ResponseKind
from repro.core.stats import Bomb, BombOrigin, InstrumentationReport
from repro.core.inner_triggers import InnerCondition, Constraint, build_inner_condition
from repro.core.bombdroid import BombDroid
from repro.core.ssn import SSNConfig, SSNProtector

__all__ = [
    "BombDroid",
    "BombDroidConfig",
    "DetectionMethod",
    "ResponseKind",
    "Bomb",
    "BombOrigin",
    "InstrumentationReport",
    "InnerCondition",
    "Constraint",
    "build_inner_condition",
    "SSNConfig",
    "SSNProtector",
]
