"""BombDroid: the paper's primary contribution.

The pipeline (Fig. 1) transforms a signed APK into a protected, unsigned
APK whose code is laced with cryptographically obfuscated logic bombs:

1. unpack the APK, extract the public key from CERT.RSA;
2. profile hot methods and field entropy (Dynodroid + Traceview role);
3. discover existing qualified conditions and construct artificial
   ones in candidate methods;
4. for each site build a double-trigger bomb: the outer condition is
   hashed (``Hash(X|salt) == Hc``), the payload (inner environment
   trigger + repackaging detection + response + woven original code) is
   AES-encrypted under ``KDF(c, salt)`` and the key constant is removed
   from the code;
5. optionally add bogus bombs; re-serialize, hide digests in
   strings.xml, and package.

Public API::

    from repro.core import BombDroid, BombDroidConfig
    result = BombDroid(BombDroidConfig(seed=1)).protect(apk, developer_key)
    result.apk, result.report, result.timings   # ProtectionResult fields
    protected_apk, report = result              # 2-tuple unpacking still works
"""

from repro.core.config import BombDroidConfig, DetectionMethod, ResponseKind
from repro.core.stats import Bomb, BombOrigin, InstrumentationReport
from repro.core.result import ProtectionResult
from repro.core.inner_triggers import (
    InnerCondition,
    Constraint,
    ProbedCondition,
    build_inner_condition,
)
from repro.core.mesh import MeshPlanner, PrologueMorph, PrologueShape, weave_mesh
from repro.core.payloads import MeshGuard
from repro.core.responses import ResponsePlan
from repro.core.bombdroid import BombDroid, app_identity_digest, derive_app_seed
from repro.core.ssn import SSNConfig, SSNProtector

__all__ = [
    "BombDroid",
    "BombDroidConfig",
    "ProtectionResult",
    "app_identity_digest",
    "derive_app_seed",
    "DetectionMethod",
    "ResponseKind",
    "Bomb",
    "BombOrigin",
    "InstrumentationReport",
    "InnerCondition",
    "Constraint",
    "ProbedCondition",
    "build_inner_condition",
    "MeshPlanner",
    "PrologueMorph",
    "PrologueShape",
    "weave_mesh",
    "MeshGuard",
    "ResponsePlan",
    "SSNConfig",
    "SSNProtector",
]
