"""Inner (environment-sensitive) trigger conditions.

Section 6: the inner condition is a quantifier-free first-order formula
of constraints ``f(env) op r`` with ``op ∈ {<, >, ==, !=}``, joined by
``&&``/``||``, constructed so each condition is satisfied with a target
probability p ∈ [0.1, 0.2] *across the device population* -- not per
evaluation: "the bomb may never be activated on that device until the
environment condition is met".

The generator consults :data:`repro.vm.device.ENV_DOMAINS` the way the
paper consults the Android Dashboards / AppBrain statistics.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dex.builder import MethodBuilder
from repro.dex.instructions import Instr
from repro.dex.opcodes import Op
from repro.vm.device import ChoiceDomain, DeviceProfile, ENV_DOMAINS, IntDomain


class CmpOp(enum.Enum):
    LT = "<"
    GT = ">"
    EQ = "=="
    NE = "!="


@dataclass(frozen=True)
class Constraint:
    """One ``env_var op value`` constraint."""

    env_name: str
    op: CmpOp
    value: object

    def evaluate(self, profile: DeviceProfile) -> bool:
        actual = profile.get(self.env_name)
        if self.op is CmpOp.EQ:
            return actual == self.value
        if self.op is CmpOp.NE:
            return actual != self.value
        if self.op is CmpOp.LT:
            return actual < self.value
        if self.op is CmpOp.GT:
            return actual > self.value
        raise AssertionError(self.op)

    def probability(self) -> float:
        """P(constraint holds) for a device drawn from the population."""
        domain = ENV_DOMAINS[self.env_name]
        if isinstance(domain, IntDomain):
            lo, hi, size = domain.lo, domain.hi, domain.size
            if self.op is CmpOp.EQ:
                return (1.0 / size) if lo <= self.value <= hi else 0.0
            if self.op is CmpOp.NE:
                return 1.0 - ((1.0 / size) if lo <= self.value <= hi else 0.0)
            if self.op is CmpOp.LT:
                covered = max(0, min(self.value - 1, hi) - lo + 1)
                return covered / size
            if self.op is CmpOp.GT:
                covered = max(0, hi - max(self.value + 1, lo) + 1)
                return covered / size
        if isinstance(domain, ChoiceDomain):
            if self.op is CmpOp.EQ:
                return domain.probability_of(lambda v: v == self.value)
            if self.op is CmpOp.NE:
                return domain.probability_of(lambda v: v != self.value)
            if self.op is CmpOp.LT:
                return domain.probability_of(lambda v: v < self.value)
            if self.op is CmpOp.GT:
                return domain.probability_of(lambda v: v > self.value)
        raise TypeError(f"unsupported domain for {self.env_name}")

    def describe(self) -> str:
        return f"env[{self.env_name}] {self.op.value} {self.value!r}"


class Connective(enum.Enum):
    AND = "&&"
    OR = "||"


def _holds(constraint: Constraint, value) -> bool:
    if constraint.op is CmpOp.EQ:
        return value == constraint.value
    if constraint.op is CmpOp.NE:
        return value != constraint.value
    if constraint.op is CmpOp.LT:
        return value < constraint.value
    return value > constraint.value


def _group_measure(name: str, group: Sequence[Constraint], require_all: bool) -> float:
    """Probability mass of the domain of ``name`` satisfying the group."""
    domain = ENV_DOMAINS[name]
    combine = all if require_all else any
    if isinstance(domain, IntDomain):
        hits = sum(
            1
            for value in range(domain.lo, domain.hi + 1)
            if combine(_holds(c, value) for c in group)
        )
        return hits / domain.size
    total = sum(weight for _, weight in domain.choices)
    hit = sum(
        weight
        for value, weight in domain.choices
        if combine(_holds(c, value) for c in group)
    )
    return hit / total if total else 0.0


@dataclass(frozen=True)
class InnerCondition:
    """A conjunction or disjunction of constraints."""

    constraints: Tuple[Constraint, ...]
    connective: Connective = Connective.AND

    def evaluate(self, profile: DeviceProfile) -> bool:
        results = (c.evaluate(profile) for c in self.constraints)
        return all(results) if self.connective is Connective.AND else any(results)

    def probability(self) -> float:
        """P(met) for a device drawn from the population.

        Exact within each variable (constraints on the same variable
        are combined over its domain, so ``101 < C < 132`` measures
        30/256, not a product of marginals); distinct variables are
        treated as independent, which they are in the sampler.
        """
        groups: dict = {}
        for constraint in self.constraints:
            groups.setdefault(constraint.env_name, []).append(constraint)
        if self.connective is Connective.AND:
            product = 1.0
            for name, group in groups.items():
                product *= _group_measure(name, group, require_all=True)
            return product
        miss = 1.0
        for name, group in groups.items():
            miss *= 1.0 - _group_measure(name, group, require_all=False)
        return 1.0 - miss

    def describe(self) -> str:
        joiner = f" {self.connective.value} "
        return joiner.join(c.describe() for c in self.constraints)

    # -- code generation --------------------------------------------------

    def emit(self, builder: MethodBuilder) -> int:
        """Emit evaluation bytecode; returns the register holding the
        boolean result.  This code ends up *inside* the encrypted
        payload, so attackers cannot read which environment is tested.
        """
        result = builder.reg()
        is_and = self.connective is Connective.AND
        builder.const(result, is_and)  # AND starts true, OR starts false
        done = builder.fresh_label("inner_done")
        for constraint in self.constraints:
            value_reg = builder.reg()
            name_reg = builder.const_new(constraint.env_name)
            builder.invoke(value_reg, "android.env.get", (name_reg,))
            test_reg = self._emit_test(builder, constraint, value_reg)
            if is_and:
                # One false constraint decides the conjunction.
                fail = builder.fresh_label("c_ok")
                builder.if_nez(test_reg, fail)
                builder.const(result, False)
                builder.goto(done)
                builder.label(fail)
            else:
                # One true constraint decides the disjunction.
                miss = builder.fresh_label("c_miss")
                builder.if_eqz(test_reg, miss)
                builder.const(result, True)
                builder.goto(done)
                builder.label(miss)
        builder.label(done)
        return result

    @staticmethod
    def _emit_test(builder: MethodBuilder, constraint: Constraint, value_reg: int) -> int:
        """Emit one constraint test; returns a bool/int register that is
        nonzero iff the constraint holds."""
        test = builder.reg()
        if isinstance(constraint.value, str):
            expect = builder.const_new(constraint.value)
            builder.invoke(test, "java.str.equals", (value_reg, expect))
            if constraint.op is CmpOp.NE:
                negated = builder.reg()
                builder.emit(Instr(Op.NOT, dst=negated, a=test))
                return negated
            return test
        expect = builder.const_new(constraint.value)
        true_label = builder.fresh_label("cmp_t")
        end_label = builder.fresh_label("cmp_e")
        branch = {
            CmpOp.EQ: builder.if_eq,
            CmpOp.NE: builder.if_ne,
            CmpOp.LT: builder.if_lt,
            CmpOp.GT: builder.if_gt,
        }[constraint.op]
        branch(value_reg, expect, true_label)
        builder.const(test, False)
        builder.goto(end_label)
        builder.label(true_label)
        builder.const(test, True)
        builder.label(end_label)
        return test


@dataclass(frozen=True)
class ProbedCondition:
    """An inner condition OR-combined with anti-analysis probes.

    The mesh planner wraps the probabilistic inner condition so that
    detection *also* runs whenever an analysis probe fires --
    ``bomb.probe("debugger")`` (a tracer is attached) or
    ``bomb.probe("hooks")`` (the framework handler table was tampered
    with).  On a clean user device every probe is false and the wrapped
    condition behaves exactly like the bare one, so the population-level
    satisfaction probability (Table 3's expectation) is unchanged --
    :meth:`probability` delegates to the inner condition.

    Duck-types :class:`InnerCondition`'s evaluate/probability/describe/
    emit surface so the payload builder and evaluation harness need no
    special cases.
    """

    inner: Optional[InnerCondition]
    probes: Tuple[str, ...] = ()

    def evaluate(self, profile: DeviceProfile) -> bool:
        """Population-side evaluation: probes are analysis-environment
        facts, never true on a sampled user device."""
        return self.inner.evaluate(profile) if self.inner is not None else False

    def probability(self) -> float:
        return self.inner.probability() if self.inner is not None else 0.0

    def describe(self) -> str:
        parts = [f"probe[{kind}]" for kind in self.probes]
        if self.inner is not None:
            parts.append(f"({self.inner.describe()})")
        return " || ".join(parts) if parts else "never"

    def emit(self, builder: MethodBuilder) -> int:
        """Probes short-circuit to true; otherwise fall back to the
        inner condition's own evaluation code."""
        result = builder.reg()
        builder.const(result, False)
        done = builder.fresh_label("probed_done")
        for kind in self.probes:
            kind_reg = builder.const_new(kind)
            hit = builder.reg()
            builder.invoke(hit, "bomb.probe", (kind_reg,))
            miss = builder.fresh_label("probe_miss")
            builder.if_eqz(hit, miss)
            builder.const(result, True)
            builder.goto(done)
            builder.label(miss)
        if self.inner is not None:
            inner_reg = self.inner.emit(builder)
            builder.if_eqz(inner_reg, done)
            builder.const(result, True)
        builder.label(done)
        return result


def build_inner_condition(
    rng: random.Random,
    probability_range: Tuple[float, float] = (0.1, 0.2),
    max_attempts: int = 200,
) -> InnerCondition:
    """Construct a random inner condition whose population-level
    satisfaction probability falls in ``probability_range``.

    Strategy: draw a target p, then either carve an interval of an int
    domain (``lo < env < hi`` style, like the paper's
    ``101 < C < 132`` IP example) or build an equality/disjunction over
    a choice domain; verify the achieved probability and retry on miss.
    """
    lo_target, hi_target = probability_range
    int_names = [n for n, d in ENV_DOMAINS.items() if isinstance(d, IntDomain)]
    choice_names = [n for n, d in ENV_DOMAINS.items() if isinstance(d, ChoiceDomain)]
    # Time and sensor readings vary *within* a session; device-identity
    # variables only vary *across* devices.  Most conditions should pin
    # identity (that is what separates the lab from the population), a
    # minority may ride the clock.
    dynamic = [n for n in int_names if n.startswith(("time.", "sensor."))]
    static_ints = [n for n in int_names if n not in dynamic]

    for _ in range(max_attempts):
        target = rng.uniform(lo_target, hi_target)
        if rng.random() < 0.6 and int_names:
            if dynamic and rng.random() < 0.2:
                name = rng.choice(dynamic)
            else:
                name = rng.choice(static_ints or int_names)
            domain: IntDomain = ENV_DOMAINS[name]
            width = max(1, round(target * domain.size))
            if width >= domain.size:
                continue
            start = rng.randint(domain.lo, domain.hi - width)
            condition = InnerCondition(
                constraints=(
                    Constraint(name, CmpOp.GT, start - 1),
                    Constraint(name, CmpOp.LT, start + width),
                ),
                connective=Connective.AND,
            )
        elif choice_names:
            name = rng.choice(choice_names)
            domain: ChoiceDomain = ENV_DOMAINS[name]
            values = list(domain.choices)
            rng.shuffle(values)
            picked: List = []
            mass = 0.0
            total = sum(weight for _, weight in domain.choices)
            for value, weight in values:
                if mass >= target:
                    break
                picked.append(value)
                mass += weight / total
            if not picked or len(picked) == len(values):
                continue
            condition = InnerCondition(
                constraints=tuple(Constraint(name, CmpOp.EQ, v) for v in picked),
                connective=Connective.OR,
            )
        else:
            continue
        achieved = condition.probability()
        if lo_target * 0.5 <= achieved <= hi_target * 1.5:
            return condition
    raise RuntimeError("could not construct an inner condition in range")
