"""Code weaving: relocating original app code into bomb payloads.

Section 3.4: "the repackaging detection and response code is woven into
the body of the if statement for the existing QC.  After code weaving,
if attackers delete conditional code that look suspicious, it will
corrupt the app itself."

Mechanically: the body region of a qualified condition is *moved* out of
the method and into the payload method, with

* every register renumbered through an explicit *live-register map*
  (only the registers the body actually touches travel through the
  caller/payload array -- this keeps bombs small and cheap),
* every label renamed with a unique prefix,
* jumps to the region's exit label redirected to the payload epilogue,
* returns rewritten by the payload builder via the control slot.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Dict, List, Sequence, Set, Tuple

from repro.dex.instructions import Instr
from repro.dex.opcodes import Op
from repro.errors import InstrumentationError

#: Label the payload builder places at its epilogue; woven exits jump here.
EPILOGUE_LABEL = "__bomb_epilogue"


def referenced_registers(instructions: Sequence[Instr]) -> Set[int]:
    """Every register a sequence of instructions reads or writes."""
    regs: Set[int] = set()
    for instr in instructions:
        regs.update(instr.reads())
        regs.update(instr.writes())
    return regs


def map_registers(instr: Instr, reg_map: Dict[int, int]) -> Instr:
    """Renumber every register operand through ``reg_map``."""

    def lookup(reg):
        if reg is None:
            return None
        try:
            return reg_map[reg]
        except KeyError:
            raise InstrumentationError(
                f"woven instruction uses unmapped register r{reg}"
            ) from None

    return dc_replace(
        instr,
        dst=lookup(instr.dst),
        a=lookup(instr.a),
        b=lookup(instr.b),
        args=tuple(lookup(reg) for reg in instr.args),
    )


def _rename_target(target: str, mapping: Dict[str, str], exit_label: str) -> str:
    if target == exit_label:
        return EPILOGUE_LABEL
    try:
        return mapping[target]
    except KeyError:
        raise InstrumentationError(
            f"woven region branches to unknown label {target!r}"
        ) from None


def rename_labels(instr: Instr, mapping: Dict[str, str], exit_label: str) -> Instr:
    """Apply the label mapping; region-exit jumps go to the epilogue."""
    changed = {}
    if instr.op is Op.LABEL:
        changed["value"] = mapping[instr.value]
    if instr.target is not None:
        changed["target"] = _rename_target(instr.target, mapping, exit_label)
    if instr.op is Op.SWITCH:
        changed["value"] = {
            key: _rename_target(label, mapping, exit_label)
            for key, label in instr.value.items()
        }
    return dc_replace(instr, **changed) if changed else instr


def replace_const_value(method, old_value: bytes, new_value: bytes) -> bool:
    """Swap one bytes CONST operand in ``method`` for ``new_value``.

    The mesh's second weaving pass re-encrypts payloads after guard
    injection and must splice the new ciphertext back into its host
    method.  Sites are located by *value*, not recorded pc -- bottom-up
    splicing during instrumentation shifted every pc, but ciphertexts
    are unique (unique salt per bomb), so the value is an exact address.
    """
    for pc, instr in enumerate(method.instructions):
        if (
            instr.op is Op.CONST
            and isinstance(instr.value, bytes)
            and instr.value == old_value
        ):
            method.instructions[pc] = dc_replace(instr, value=new_value)
            method.invalidate()
            return True
    return False


def prepare_woven_body(
    region_instructions: Sequence[Instr],
    exit_label: str,
    reg_map: Dict[int, int],
    label_prefix: str,
) -> List[Instr]:
    """Transform a body region for embedding into a payload method.

    ``reg_map`` maps each caller register the body references to its
    payload-local register.  Returns the renumbered/relabelled
    instruction list.  RETURN / RETURN_VOID instructions are passed
    through untouched (modulo register mapping); the payload builder
    rewrites them into control-slot updates.
    """
    mapping = {
        instr.value: f"{label_prefix}{instr.value}"
        for instr in region_instructions
        if instr.op is Op.LABEL
    }
    out: List[Instr] = []
    for instr in region_instructions:
        instr = map_registers(instr, reg_map)
        instr = rename_labels(instr, mapping, exit_label)
        out.append(instr)
    return out
