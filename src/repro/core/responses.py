"""Response code generation (Section 4.2).

Responses run inside the decrypted payload after detection fires.  Each
emitter appends bytecode to the payload builder; every response first
records a ``responded`` marker so the evaluation can distinguish
detection from response.

The menu matches the paper: crash the process, launch an endless loop,
leak memory through a static reference, null out an app reference so
the app fails later, warn the user, report to the developer, or degrade
responsiveness.

:class:`ResponsePlan` is the mesh extension (ARMAND-style multi-pattern
responses): the same catalog, but optionally *delayed* behind a
fire-after-N-hits counter and/or *gated* on an env-derived residue so
the response is not temporally correlated with the tamper that tripped
it.  The gate reads stable device identity (``android.env.get``), never
``java.rand.next`` -- the instrumentation attack patches the latter
deterministic, and a derandomized gate would hand the attacker a
silence switch.

All randomness used to *draw* a plan is threaded through the per-app
seeded rng (PR 5's byte-identical serial/parallel guarantee); this
module holds no module-level random state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import ResponseKind
from repro.dex.builder import MethodBuilder
from repro.errors import InstrumentationError

#: Static field declared on every payload class; the leak response
#: anchors allocations here so the collector can never reclaim them.
LEAK_FIELD = "leak"

#: Static counter field backing delayed responses (per payload class).
TRIP_COUNT_FIELD = "hits"

#: Static flag set once a payload has seen its whole mesh intact; later
#: runs skip guard re-verification (tampering is static, so one clean
#: pass proves the mesh for the process lifetime).
MESH_OK_FIELD = "mesh_ok"

#: Iterations of the slowdown busy-loop per execution.
SLOWDOWN_ITERATIONS = 4000

#: Elements allocated per leak hit.
LEAK_CHUNK = 65536

#: Stable, non-negative int env variables suitable as gate sources --
#: device identity, not session dynamics, so the gate's verdict is
#: constant per device (the paper's "may never be activated on that
#: device" framing) and immune to rand derandomization.
GATE_ENV_SOURCES = (
    "build.serial_low",
    "build.mac_octet",
    "build.board_rev",
    "build.bootloader_rev",
)


@dataclass(frozen=True)
class ResponsePlan:
    """A response plus its delay/probability envelope.

    ``delay_marks``: fire only from the Nth trip onward (a per-payload
    static counter counts trips across firings of the same process).
    ``gate_env``/``gate_modulus``/``gate_residue``: fire only on devices
    where ``env[gate_env] % modulus == residue`` -- an env-derived draw
    that decorrelates responses across the attacker's device farm.
    """

    kind: ResponseKind
    delay_marks: int = 0
    gate_env: Optional[str] = None
    gate_modulus: int = 1
    gate_residue: int = 0

    def describe(self) -> str:
        parts = [self.kind.value]
        if self.delay_marks:
            parts.append(f"after {self.delay_marks} trips")
        if self.gate_env:
            parts.append(
                f"if env[{self.gate_env}] % {self.gate_modulus} == {self.gate_residue}"
            )
        return " ".join(parts)


def draw_response_plan(kind: ResponseKind, rng: random.Random) -> ResponsePlan:
    """Draw a delay/gate envelope for ``kind`` from the per-app rng.

    Roughly a third of plans fire immediately, a third are delayed, and
    a third are gated on device identity (modulus 2 or 3, so the
    response still fires on a substantial share of devices).
    """
    shape = rng.randrange(3)
    if shape == 0:
        return ResponsePlan(kind=kind)
    if shape == 1:
        return ResponsePlan(kind=kind, delay_marks=rng.randint(1, 3))
    modulus = rng.choice((2, 3))
    return ResponsePlan(
        kind=kind,
        gate_env=rng.choice(GATE_ENV_SOURCES),
        gate_modulus=modulus,
        gate_residue=rng.randrange(modulus),
    )


def emit_planned_response(
    builder: MethodBuilder,
    plan: ResponsePlan,
    bomb_id: str,
    payload_class: str,
    app_name: str,
    null_target: Optional[str] = None,
) -> None:
    """Emit ``plan``'s gates followed by its response.

    The ``responded`` marker is recorded (by :func:`emit_response`) only
    *after* every gate passes: a delayed trip that merely increments the
    counter has not responded, so the containment responded-delta check
    keeps treating it as a clean payload run.
    """
    skip = builder.fresh_label("resp_skip")
    if plan.delay_marks > 0:
        count = builder.reg()
        builder.sget(count, f"{payload_class}.{TRIP_COUNT_FIELD}")
        builder.add_lit(count, count, 1)
        builder.sput(count, f"{payload_class}.{TRIP_COUNT_FIELD}")
        limit = builder.const_new(plan.delay_marks)
        builder.if_lt(count, limit, skip)
    if plan.gate_env is not None:
        name_reg = builder.const_new(plan.gate_env)
        value = builder.reg()
        builder.invoke(value, "android.env.get", (name_reg,))
        residue = builder.reg()
        builder.rem_lit(residue, value, plan.gate_modulus)
        expected = builder.const_new(plan.gate_residue)
        builder.if_ne(residue, expected, skip)
    emit_response(builder, plan.kind, bomb_id, payload_class, app_name, null_target)
    builder.label(skip)


def emit_response(
    builder: MethodBuilder,
    kind: ResponseKind,
    bomb_id: str,
    payload_class: str,
    app_name: str,
    null_target: Optional[str] = None,
) -> None:
    """Append response bytecode for ``kind`` to the payload builder.

    ``null_target`` is the qualified app static field the NULL_STATIC
    response clears; required for that kind only.
    """
    id_reg = builder.const_new(bomb_id)
    mark_reg = builder.const_new("responded")
    builder.invoke(None, "bomb.mark", (id_reg, mark_reg))

    if kind is ResponseKind.CRASH:
        message = builder.const_new(f"repackaging response [{bomb_id}]")
        builder.throw(message)
        return

    if kind is ResponseKind.ENDLESS_LOOP:
        spin = builder.fresh_label("spin")
        builder.label(spin)
        builder.goto(spin)
        return

    if kind is ResponseKind.MEMORY_LEAK:
        size = builder.const_new(LEAK_CHUNK)
        array = builder.reg()
        builder.new_array(array, size)
        builder.sput(array, f"{payload_class}.{LEAK_FIELD}")
        return

    if kind is ResponseKind.NULL_STATIC:
        if null_target is None:
            raise InstrumentationError("NULL_STATIC response needs a target field")
        null_reg = builder.const_new(None)
        builder.sput(null_reg, null_target)
        return

    if kind is ResponseKind.WARN:
        message = builder.const_new(
            f"Warning: this copy of {app_name} appears to be repackaged. "
            "Please uninstall it and download the official version."
        )
        builder.invoke(None, "android.ui.alert", (message,))
        return

    if kind is ResponseKind.REPORT:
        from repro.reporting.wire import format_report_text

        message = builder.const_new(format_report_text(app_name, bomb_id))
        key_reg = builder.reg()
        builder.invoke(key_reg, "android.pm.get_public_key", ())
        full = builder.reg()
        builder.invoke(full, "java.str.concat", (message, key_reg))
        builder.invoke(None, "android.net.report", (full,))
        return

    if kind is ResponseKind.SLOWDOWN:
        counter = builder.const_new(0)
        limit = builder.const_new(SLOWDOWN_ITERATIONS)
        top = builder.fresh_label("slow")
        done = builder.fresh_label("slow_done")
        builder.label(top)
        builder.if_ge(counter, limit, done)
        builder.add_lit(counter, counter, 1)
        builder.goto(top)
        builder.label(done)
        return

    raise InstrumentationError(f"unhandled response kind {kind!r}")


def choose_null_target(app_static_fields: Sequence[str], rng: random.Random) -> Optional[str]:
    """Pick an app static field for the NULL_STATIC response."""
    if not app_static_fields:
        return None
    return rng.choice(sorted(app_static_fields))
