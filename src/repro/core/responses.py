"""Response code generation (Section 4.2).

Responses run inside the decrypted payload after detection fires.  Each
emitter appends bytecode to the payload builder; every response first
records a ``responded`` marker so the evaluation can distinguish
detection from response.

The menu matches the paper: crash the process, launch an endless loop,
leak memory through a static reference, null out an app reference so
the app fails later, warn the user, report to the developer, or degrade
responsiveness.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.config import ResponseKind
from repro.dex.builder import MethodBuilder
from repro.errors import InstrumentationError

#: Static field declared on every payload class; the leak response
#: anchors allocations here so the collector can never reclaim them.
LEAK_FIELD = "leak"

#: Iterations of the slowdown busy-loop per execution.
SLOWDOWN_ITERATIONS = 4000

#: Elements allocated per leak hit.
LEAK_CHUNK = 65536


def emit_response(
    builder: MethodBuilder,
    kind: ResponseKind,
    bomb_id: str,
    payload_class: str,
    app_name: str,
    null_target: Optional[str] = None,
) -> None:
    """Append response bytecode for ``kind`` to the payload builder.

    ``null_target`` is the qualified app static field the NULL_STATIC
    response clears; required for that kind only.
    """
    id_reg = builder.const_new(bomb_id)
    mark_reg = builder.const_new("responded")
    builder.invoke(None, "bomb.mark", (id_reg, mark_reg))

    if kind is ResponseKind.CRASH:
        message = builder.const_new(f"repackaging response [{bomb_id}]")
        builder.throw(message)
        return

    if kind is ResponseKind.ENDLESS_LOOP:
        spin = builder.fresh_label("spin")
        builder.label(spin)
        builder.goto(spin)
        return

    if kind is ResponseKind.MEMORY_LEAK:
        size = builder.const_new(LEAK_CHUNK)
        array = builder.reg()
        builder.new_array(array, size)
        builder.sput(array, f"{payload_class}.{LEAK_FIELD}")
        return

    if kind is ResponseKind.NULL_STATIC:
        if null_target is None:
            raise InstrumentationError("NULL_STATIC response needs a target field")
        null_reg = builder.const_new(None)
        builder.sput(null_reg, null_target)
        return

    if kind is ResponseKind.WARN:
        message = builder.const_new(
            f"Warning: this copy of {app_name} appears to be repackaged. "
            "Please uninstall it and download the official version."
        )
        builder.invoke(None, "android.ui.alert", (message,))
        return

    if kind is ResponseKind.REPORT:
        from repro.reporting.wire import format_report_text

        message = builder.const_new(format_report_text(app_name, bomb_id))
        key_reg = builder.reg()
        builder.invoke(key_reg, "android.pm.get_public_key", ())
        full = builder.reg()
        builder.invoke(full, "java.str.concat", (message, key_reg))
        builder.invoke(None, "android.net.report", (full,))
        return

    if kind is ResponseKind.SLOWDOWN:
        counter = builder.const_new(0)
        limit = builder.const_new(SLOWDOWN_ITERATIONS)
        top = builder.fresh_label("slow")
        done = builder.fresh_label("slow_done")
        builder.label(top)
        builder.if_ge(counter, limit, done)
        builder.add_lit(counter, counter, 1)
        builder.goto(top)
        builder.label(done)
        return

    raise InstrumentationError(f"unhandled response kind {kind!r}")


def choose_null_target(app_static_fields: Sequence[str], rng: random.Random) -> Optional[str]:
    """Pick an app static field for the NULL_STATIC response."""
    if not app_static_fields:
        return None
    return rng.choice(sorted(app_static_fields))
