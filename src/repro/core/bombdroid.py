"""The BombDroid pipeline (Fig. 1 of the paper).

``BombDroid(config).protect(apk, developer_key)`` runs the four steps:

1. **Unpacking** -- parse the APK, extract the public key (fingerprint)
   that detection payloads will compare against.
2. **Static + dynamic analysis** -- profile hot methods (Dynodroid +
   Traceview role) and static-field entropy; discover existing
   qualified conditions in candidate methods; exclude loops.
3. **Bytecode instrumentation** -- transform existing QCs into
   double-trigger bombs (weaving bodies where possible), insert
   artificial QCs into α of the candidate methods, add bogus bombs.
4. **Packaging** -- serialize, hide the code digest in strings.xml
   steganographically, and sign.

Returns ``(protected_apk, InstrumentationReport)``.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.entropy import FieldValueProfiler
from repro.analysis.loops import instructions_in_loops
from repro.analysis.profiler import profile_hot_methods
from repro.analysis.qualified_conditions import (
    QCKind,
    QualifiedCondition,
    find_qualified_conditions,
)
from repro.analysis.regions import body_region
from repro.analysis.defs import use_sites
from repro.apk.package import Apk, build_apk
from repro.apk.stego import embed_in_cover, stego_capacity
from repro.core.config import BombDroidConfig, DetectionMethod
from repro.core.inner_triggers import build_inner_condition
from repro.core.instrumenter import Instrumenter
from repro.core.result import ProtectionResult
from repro.core.stats import Bomb, BombOrigin, InstrumentationReport
from repro.crypto import RSAKeyPair, sha1_hex
from repro.dex.hashing import method_instruction_hash
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import Op, UNCONDITIONAL_EXITS
from repro.dex.serializer import serialize_dex
from repro.errors import InstrumentationError, ReproError
from repro.fuzzing.generators import DynodroidGenerator
from repro.vm.device import DevicePopulation
from repro.vm.runtime import Runtime

#: Cover sentence used when the app has no string long enough to carry
#: the hidden digest.  Reads like an ordinary tagline.
_DEFAULT_COVER = (
    "thank you for installing this application we hope you enjoy using it "
    "every single day and tell all of your friends about the experience"
)


def app_identity_digest(apk: Apk) -> str:
    """Digest of everything that makes this app *this* app: every
    entry (dex and resources both count -- two catalog builds can
    share a dex and differ only in strings) plus the signing cert."""
    pieces = []
    for name in sorted(apk.entries):
        pieces.append(name.encode("utf-8"))
        pieces.append(apk.entries[name])
    pieces.append(apk.cert.serialize())
    return sha1_hex(b"\x00".join(pieces))


def derive_app_seed(seed: int, identity_digest_hex: str) -> int:
    """Mix the config seed with the app's identity.

    A shared config protecting a whole catalog must not hand every app
    the same salt/nonce/label stream -- identical salts across apps are
    a cross-app correlation gift to the attacker.  The derived seed is
    stable for (seed, app) so single-app runs stay reproducible.
    """
    blob = f"{seed}:{identity_digest_hex}".encode("utf-8")
    return int(sha1_hex(blob)[:16], 16)


class BombDroid:
    """The protection pipeline."""

    def __init__(self, config: Optional[BombDroidConfig] = None) -> None:
        self.config = config or BombDroidConfig()

    # ------------------------------------------------------------------

    def protect(
        self, apk: Apk, developer_key: RSAKeyPair, strict: bool = False
    ) -> ProtectionResult:
        """Protect ``apk``; the result is re-signed with ``developer_key``.

        The input APK must be signed by the same developer: its public
        key is what the bombs will treat as genuine.

        With ``strict=True`` the instrumented bytecode is run through
        the verifier and the stealth lint suite before packaging, and
        :class:`repro.errors.VerificationError` is raised if any
        error-severity diagnostic fires -- a corrupted or detectable
        app is never emitted.

        Returns a :class:`ProtectionResult` (tuple-compatible with the
        historical ``(protected_apk, report)`` pair).  All randomness
        derives from ``config.seed`` mixed with the app's dex digest,
        so a shared config gives every app a distinct salt stream while
        each (config, app) pair stays byte-for-byte reproducible.
        """
        config = self.config
        timings: Dict[str, float] = {}
        stage_start = time.perf_counter()

        app_seed = derive_app_seed(config.seed, app_identity_digest(apk))
        rng = random.Random(app_seed)

        dex = apk.dex()  # fresh parse: our working copy
        resources = apk.resources().copy()
        original_key_hex = apk.cert.fingerprint_hex()
        report = InstrumentationReport(
            app_name=resources.app_name,
            size_before=apk.total_size(),
            instructions_before=dex.instruction_count(),
        )
        stage_start = self._lap(timings, "unpack", stage_start)

        # -- step 2: profiling ------------------------------------------------
        hot_profile, entropy = self._profile(apk, app_seed)
        stage_start = self._lap(timings, "profile", stage_start)
        report.hot_methods = sorted(hot_profile.hot_methods)
        candidates = (
            hot_profile.candidate_methods
            if config.exclude_hot_methods
            else sorted(m.qualified_name for m in dex.iter_methods())
        )
        report.candidate_methods = list(candidates)

        # Code-scan bombs pin methods that will never be instrumented.
        scan_targets = [
            (name, method_instruction_hash(dex.get_method(name)))
            for name in report.hot_methods
        ]
        app_static_fields = [
            f"{cls.name}.{f.name}"
            for cls in dex.classes.values()
            for f in cls.static_fields()
        ]

        mute_flag = None
        if config.mute_after_detection:
            mute_flag = self._install_mute_flag(dex)

        mesh_planner = None
        if config.mesh:
            from repro.core.mesh import MeshPlanner
            from repro.vm.aliases import ALIAS_RESOURCE_KEY

            mesh_planner = MeshPlanner(config, rng)
            # Ship the alias key so the runtime can resolve aliased
            # trigger invokes.  Resources survive repackaging -- an
            # attacker who drops them breaks the app outright.
            resources.strings[ALIAS_RESOURCE_KEY] = mesh_planner.alias_key

        instrumenter = Instrumenter(
            dex,
            config,
            rng,
            app_name=resources.app_name,
            original_key_hex=original_key_hex,
            scan_targets=scan_targets,
            app_static_fields=app_static_fields,
            mute_flag=mute_flag,
            mesh_planner=mesh_planner,
        )

        # -- step 3a: existing QCs ---------------------------------------------
        bombs = self._transform_existing(dex, candidates, instrumenter, rng, report)
        report.bombs.extend(bombs)

        # -- step 3b: artificial QCs ----------------------------------------------
        report.bombs.extend(
            self._insert_artificial(dex, candidates, instrumenter, entropy, rng)
        )

        # -- step 3c: bomb mesh (second weaving pass) ----------------------------
        if mesh_planner is not None:
            from repro.core.mesh import weave_mesh

            weave_mesh(
                dex,
                instrumenter.pending_sites,
                mesh_planner,
                report,
                hot_methods=report.hot_methods,
            )

        dex.validate()
        stage_start = self._lap(timings, "instrument", stage_start)

        # -- step 3d: verification gate -------------------------------------------
        if strict:
            self._strict_gate(
                dex,
                report,
                entropy,
                aliases=mesh_planner.aliases() if mesh_planner else None,
            )
        stage_start = self._lap(timings, "verify", stage_start)

        # -- step 4: packaging ---------------------------------------------------
        new_resources = self._embed_digest(dex, resources)
        protected = build_apk(dex, new_resources, developer_key)
        report.size_after = protected.total_size()
        report.instructions_after = dex.instruction_count()
        self._lap(timings, "package", stage_start)
        return ProtectionResult(
            apk=protected, report=report, timings=timings, app_seed=app_seed
        )

    @staticmethod
    def _lap(timings: Dict[str, float], stage: str, start: float) -> float:
        """Record the elapsed time for ``stage``; returns the new start."""
        now = time.perf_counter()
        timings[stage] = now - start
        return now

    @staticmethod
    def _strict_gate(
        dex: DexFile, report: InstrumentationReport, entropy, aliases=None
    ) -> None:
        """Refuse to emit an app with error-severity diagnostics.

        Imported lazily: repro.lint depends on repro.analysis, and this
        keeps repro.core import-light for callers that never gate.
        """
        from repro.errors import VerificationError
        from repro.lint import errors, run_lint

        field_entropy = {
            history.name: history.unique_count
            for history in entropy.histories.values()
        }
        diagnostics = run_lint(
            dex, report=report, field_entropy=field_entropy, aliases=aliases
        )
        failures = errors(diagnostics)
        if failures:
            preview = "; ".join(diag.format() for diag in failures[:5])
            raise VerificationError(
                f"strict mode: {len(failures)} error-severity diagnostic(s) "
                f"after instrumentation: {preview}",
                diagnostics=failures,
            )

    @staticmethod
    def _install_mute_flag(dex: DexFile) -> str:
        """Add the shared muting flag (Section 10's strategic muting).

        A disguised name and an int initial value keep it shaped like
        ordinary app state.
        """
        from repro.dex.model import DexClass, DexField

        holder = sorted(dex.classes)[0]
        cls = dex.classes[holder]
        name = "cfg_cache"
        if name not in cls.fields:
            cls.add_field(DexField(name=name, static=True, initial=False))
        return f"{holder}.{name}"

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------

    def _profile(self, apk: Apk, app_seed: int):
        """Hot-method and field-entropy profiling on the original app."""
        config = self.config
        dex = apk.dex()
        runtime = Runtime(
            dex,
            device=DevicePopulation(seed=app_seed).sample(),
            package=apk.install_view(),
            seed=app_seed,
        )
        try:
            runtime.boot()
        except ReproError:
            # A crashing app still gets profiled (and protected); only
            # the library's own failures are expected here.
            pass
        generator = DynodroidGenerator(dex, seed=app_seed)
        entropy = FieldValueProfiler()
        entropy.sample(runtime)
        sample_every = max(1, config.profiling_events // 60)  # ~once a "minute"

        def on_event(index: int, rt) -> None:
            if index % sample_every == 0:
                entropy.sample(rt)

        try:
            events = generator.stream(config.profiling_events)
        except ValueError:
            events = []
        profile = profile_hot_methods(
            runtime,
            events,
            top_fraction=config.hot_fraction,
            on_event=on_event,
        )
        return profile, entropy

    # ------------------------------------------------------------------
    # existing QCs
    # ------------------------------------------------------------------

    def _transform_existing(
        self,
        dex: DexFile,
        candidates: List[str],
        instrumenter: Instrumenter,
        rng: random.Random,
        report: InstrumentationReport,
    ) -> List[Bomb]:
        config = self.config
        bombs: List[Bomb] = []
        for name in candidates:
            method = dex.get_method(name)
            qcs = find_qualified_conditions(method)
            report.existing_qcs_found += len(qcs)
            if not qcs:
                continue
            forbidden = instructions_in_loops(method) if config.avoid_loops else set()
            plans = self._plan_method(method, qcs, forbidden, rng)
            count = 0
            for qc, region, real in plans:
                if count >= config.max_bombs_per_method:
                    break
                inner = (
                    build_inner_condition(rng, config.inner_probability)
                    if config.double_trigger
                    else None
                )
                try:
                    if region is not None and config.weave:
                        bomb = instrumenter.transform_weavable(
                            method, qc, region, inner, real=real
                        )
                    else:
                        bomb = instrumenter.transform_payload_only(
                            method, qc, inner, real=real
                        )
                except InstrumentationError:
                    continue
                bombs.append(bomb)
                count += 1
        return bombs

    def _plan_method(
        self,
        method: DexMethod,
        qcs: List[QualifiedCondition],
        forbidden: Set[int],
        rng: random.Random,
    ):
        """Order and de-conflict the QCs of one method.

        Transforms run bottom-up (descending pc) so earlier sites stay
        valid; overlapping claims are dropped; a ``bogus_ratio`` slice of
        the sites becomes bogus bombs.
        """
        config = self.config
        usable = []
        for qc in qcs:
            if qc.branch_pc in forbidden:
                continue
            if qc.kind in (QCKind.STR_STARTS_WITH, QCKind.STR_ENDS_WITH):
                # Prefix/suffix checks cannot reproduce the key from X.
                continue
            if qc.compare_pc is not None:
                if qc.branch_pc != qc.compare_pc + 1:
                    continue
                result_reg = method.instructions[qc.compare_pc].dst
                if use_sites(method, result_reg) != [qc.branch_pc]:
                    continue
            region = body_region(method, qc)
            if region is not None and qc.kind is QCKind.SWITCH_CASE:
                if not self._switch_case_isolated(method, qc):
                    region = None
            usable.append((qc, region))

        # De-conflict: claim [min_pc, max_pc) intervals bottom-up.
        usable.sort(key=lambda pair: -pair[0].branch_pc)
        claimed: List[Tuple[int, int]] = []
        planned = []
        for qc, region in usable:
            lo = qc.compare_pc if qc.compare_pc is not None else qc.branch_pc
            if qc.const_def_pc is not None:
                lo = min(lo, qc.const_def_pc)
            hi = region.end if region is not None else qc.branch_pc + 1
            hi = max(hi, qc.branch_pc + 1)
            if any(not (hi <= s or e <= lo) for s, e in claimed):
                continue
            claimed.append((lo, hi))
            planned.append((qc, region))

        flags = []
        for qc, region in planned:
            # Weavable sites become bogus with probability bogus_ratio;
            # a bogus bomb must carry woven code or deleting it would be
            # free for the attacker.
            is_bogus = region is not None and rng.random() < config.bogus_ratio
            flags.append(not is_bogus)
        return [(qc, region, real) for (qc, region), real in zip(planned, flags)]

    @staticmethod
    def _switch_case_isolated(method: DexMethod, qc: QualifiedCondition) -> bool:
        """True when only the switch's matched key references the case
        label (safe to move the case body into the payload)."""
        switch = method.instructions[qc.branch_pc]
        case_label = switch.value.get(qc.case_key)
        references = 0
        for pc, instr in enumerate(method.instructions):
            if instr.target == case_label:
                references += 1
            if instr.op is Op.SWITCH:
                references += sum(1 for lbl in instr.value.values() if lbl == case_label)
        return references == 1

    # ------------------------------------------------------------------
    # artificial QCs
    # ------------------------------------------------------------------

    def _insert_artificial(
        self,
        dex: DexFile,
        candidates: List[str],
        instrumenter: Instrumenter,
        entropy: FieldValueProfiler,
        rng: random.Random,
    ) -> List[Bomb]:
        config = self.config
        ranked = entropy.rank_by_entropy()
        if not ranked:
            return []
        pool = [name for name in candidates if name in
                {m.qualified_name for m in dex.iter_methods()}]
        rng.shuffle(pool)
        chosen = pool[: max(1, int(len(pool) * config.alpha))] if pool else []
        bombs: List[Bomb] = []
        top_fields = ranked[: max(3, len(ranked) // 3)]
        for name in sorted(chosen):
            method = dex.get_method(name)
            pc = self._artificial_site(method, rng)
            if pc is None:
                continue
            history = rng.choice(top_fields)
            values = [
                v for v in history.unique_values()
                if isinstance(v, (int, str)) and not isinstance(v, bool)
            ]
            if not values:
                continue
            constant = rng.choice(values)
            inner = (
                build_inner_condition(rng, config.inner_probability)
                if config.double_trigger
                else None
            )
            try:
                bombs.append(
                    instrumenter.insert_artificial(method, pc, history.name, constant, inner)
                )
            except InstrumentationError:
                continue
        return bombs

    def _artificial_site(self, method: DexMethod, rng: random.Random) -> Optional[int]:
        """A safe insertion pc: reachable, outside loops, at an original
        statement boundary."""
        forbidden = instructions_in_loops(method) if self.config.avoid_loops else set()
        instructions = method.instructions
        options = []
        for pc in range(len(instructions)):
            if pc in forbidden:
                continue
            if pc > 0 and instructions[pc - 1].op in UNCONDITIONAL_EXITS:
                continue  # dead position
            # Do not split a compare/branch or const/branch pair.
            if instructions[pc].op.value.startswith("if_"):
                continue
            if pc > 0 and instructions[pc - 1].op is Op.INVOKE:
                nxt = instructions[pc]
                if nxt.op.value.startswith("if_"):
                    continue
            options.append(pc)
        if not options:
            return None
        return rng.choice(options)

    # ------------------------------------------------------------------
    # packaging helpers
    # ------------------------------------------------------------------

    def _embed_digest(self, dex: DexFile, resources):
        """Hide the final classes.dex digest prefix in strings.xml."""
        config = self.config
        uses_digest = DetectionMethod.CODE_DIGEST in config.detection_methods
        if not uses_digest and config.stego_key not in resources.strings:
            # Always ship a carrier so protected apps look uniform.
            resources.strings.setdefault(config.stego_key, _DEFAULT_COVER)
            return resources
        digest = bytes.fromhex(sha1_hex(serialize_dex(dex)))
        fragment = digest[: config.stego_digest_bytes]
        cover = resources.strings.get(config.stego_key, _DEFAULT_COVER)
        if stego_capacity(cover) < len(fragment) * 8:
            cover = _DEFAULT_COVER
        resources.strings[config.stego_key] = embed_in_cover(cover, fragment)
        return resources
