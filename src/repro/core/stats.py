"""Bomb metadata and the instrumentation report.

Everything the evaluation harness needs to know about what was injected
where -- Table 2 (bomb counts by origin), Figure 4 (strength
distributions), and the ground truth for resilience experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.qualified_conditions import Strength
from repro.core.config import DetectionMethod, ResponseKind


class BombOrigin(enum.Enum):
    """Where the bomb's outer condition came from."""

    EXISTING = "existing"      # an existing qualified condition
    ARTIFICIAL = "artificial"  # an inserted artificial QC
    BOGUS = "bogus"            # looks like a bomb, carries no detection


@dataclass
class Bomb:
    """Ground-truth record of one injected bomb."""

    bomb_id: str
    method: str                      # qualified method name
    origin: BombOrigin
    strength: Strength
    const_value: object              # the (removed) trigger constant c
    salt_hex: str
    hc_hex: str                      # stored comparison digest
    payload_class: str
    woven: bool                      # original code woven into payload
    detection: Optional[DetectionMethod]   # None for bogus bombs
    response: Optional[ResponseKind]
    inner_description: str = ""      # human-readable inner condition
    inner_probability: float = 1.0   # P(inner met on a random device)
    #: True when the defining CONST of c was erased from the method --
    #: the lint rule ``leaked-trigger-const`` asserts it stays gone.
    const_erased: bool = False
    #: Caller registers travelling through the payload array, in slot
    #: order -- the liveness result ``live-set-mismatch`` re-checks.
    packed_regs: Tuple[int, ...] = ()
    #: Mesh ground truth (repro.core.mesh); defaults describe an
    #: unmeshed bomb so pre-mesh serialized reports keep loading.
    prologue_shape: str = "classic"
    mesh_peers: Tuple[str, ...] = ()     # peer bombs whose shape this payload guards
    content_pin: str = ""                # host method whose full hash is pinned
    response_plan: str = ""              # human-readable delay/gate envelope

    @property
    def is_real(self) -> bool:
        return self.origin is not BombOrigin.BOGUS

    # -- serialization (artifact cache / cross-process transport) -------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view; ``from_dict`` round-trips it exactly."""
        return {
            "bomb_id": self.bomb_id,
            "method": self.method,
            "origin": self.origin.value,
            "strength": self.strength.value,
            # Tag the constant's type: JSON folds bool into int/str.
            "const_type": type(self.const_value).__name__,
            "const_value": self.const_value,
            "salt_hex": self.salt_hex,
            "hc_hex": self.hc_hex,
            "payload_class": self.payload_class,
            "woven": self.woven,
            "detection": self.detection.value if self.detection else None,
            "response": self.response.value if self.response else None,
            "inner_description": self.inner_description,
            "inner_probability": self.inner_probability,
            "const_erased": self.const_erased,
            "packed_regs": list(self.packed_regs),
            "prologue_shape": self.prologue_shape,
            "mesh_peers": list(self.mesh_peers),
            "content_pin": self.content_pin,
            "response_plan": self.response_plan,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Bomb":
        const_value = data["const_value"]
        if data.get("const_type") == "bool":
            const_value = bool(const_value)
        return cls(
            bomb_id=data["bomb_id"],
            method=data["method"],
            origin=BombOrigin(data["origin"]),
            strength=Strength(data["strength"]),
            const_value=const_value,
            salt_hex=data["salt_hex"],
            hc_hex=data["hc_hex"],
            payload_class=data["payload_class"],
            woven=data["woven"],
            detection=DetectionMethod(data["detection"]) if data["detection"] else None,
            response=ResponseKind(data["response"]) if data["response"] else None,
            inner_description=data.get("inner_description", ""),
            inner_probability=data.get("inner_probability", 1.0),
            const_erased=data.get("const_erased", False),
            packed_regs=tuple(data.get("packed_regs", ())),
            prologue_shape=data.get("prologue_shape", "classic"),
            mesh_peers=tuple(data.get("mesh_peers", ())),
            content_pin=data.get("content_pin", ""),
            response_plan=data.get("response_plan", ""),
        )


@dataclass
class InstrumentationReport:
    """Summary of one protection run."""

    app_name: str
    bombs: List[Bomb] = field(default_factory=list)
    hot_methods: List[str] = field(default_factory=list)
    candidate_methods: List[str] = field(default_factory=list)
    existing_qcs_found: int = 0
    size_before: int = 0             # APK bytes before protection
    size_after: int = 0
    instructions_before: int = 0
    instructions_after: int = 0

    # -- Table 2 style accessors ---------------------------------------------

    def real_bombs(self) -> List[Bomb]:
        return [bomb for bomb in self.bombs if bomb.is_real]

    def count_by_origin(self, origin: BombOrigin) -> int:
        return sum(1 for bomb in self.bombs if bomb.origin is origin)

    @property
    def total_injected(self) -> int:
        return len(self.real_bombs())

    def strength_histogram(self, origin: BombOrigin = None) -> Dict[Strength, int]:
        histogram = {strength: 0 for strength in Strength}
        for bomb in self.real_bombs():
            if origin is None or bomb.origin is origin:
                histogram[bomb.strength] += 1
        return histogram

    @property
    def size_increase(self) -> float:
        """Fractional APK size growth (paper: 8-13%, avg 9.7%)."""
        if self.size_before == 0:
            return 0.0
        return (self.size_after - self.size_before) / self.size_before

    def bomb_by_id(self, bomb_id: str) -> Bomb:
        for bomb in self.bombs:
            if bomb.bomb_id == bomb_id:
                return bomb
        raise KeyError(bomb_id)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view; ``from_dict`` round-trips it exactly."""
        return {
            "app_name": self.app_name,
            "bombs": [bomb.to_dict() for bomb in self.bombs],
            "hot_methods": list(self.hot_methods),
            "candidate_methods": list(self.candidate_methods),
            "existing_qcs_found": self.existing_qcs_found,
            "size_before": self.size_before,
            "size_after": self.size_after,
            "instructions_before": self.instructions_before,
            "instructions_after": self.instructions_after,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InstrumentationReport":
        return cls(
            app_name=data["app_name"],
            bombs=[Bomb.from_dict(entry) for entry in data["bombs"]],
            hot_methods=list(data.get("hot_methods", ())),
            candidate_methods=list(data.get("candidate_methods", ())),
            existing_qcs_found=data.get("existing_qcs_found", 0),
            size_before=data.get("size_before", 0),
            size_after=data.get("size_after", 0),
            instructions_before=data.get("instructions_before", 0),
            instructions_after=data.get("instructions_after", 0),
        )

    def summary(self) -> str:
        real = self.real_bombs()
        existing = self.count_by_origin(BombOrigin.EXISTING)
        artificial = self.count_by_origin(BombOrigin.ARTIFICIAL)
        bogus = self.count_by_origin(BombOrigin.BOGUS)
        return (
            f"{self.app_name}: {len(real)} bombs "
            f"({existing} existing QC, {artificial} artificial QC, {bogus} bogus), "
            f"size +{self.size_increase:.1%}"
        )
