"""Bomb mesh planning: ARMAND-style multi-pattern tamper response.

The classic pipeline emits one prologue shape (Listing 3) and mutually
independent bombs, so a single learned pattern strips every site and no
surviving bomb notices.  The mesh closes both gaps:

* **Cross-reference topology** (:meth:`MeshPlanner.topology`): each real
  bomb's payload verifies digests of *peer* bombs' host methods, so
  deleting or rewriting any one bomb trips a surviving bomb's tamper
  response.  Two guard layers cooperate:

  - *shape guards* use ``bomb.shape_digest`` (bytes constants masked),
    which is invariant under the mesh's own ciphertext rewrites --
    breaking the circular dependency of bombs guarding each other --
    yet changes when a prologue branch is stripped, NOPed, or deleted;
  - *content pins* use ``bomb.method_digest`` (the full instruction
    hash) chained over host methods in rebuild order, catching
    ciphertext blanking that shape guards deliberately ignore.  The
    chain is open: the last-rebuilt method is the one unpinned anchor
    (a cycle would be unsatisfiable), but the attacker cannot tell
    which method that is -- the guards live inside ciphertext.

* **Prologue morphing** (:meth:`MeshPlanner.next_morph`): each bomb's
  outer shape is drawn from a per-app library of semantically
  equivalent prologues (operand swaps, split hash compare, decoy dead
  compare, per-app alias symbols for the trigger invokes), so no single
  byte pattern matches every site.  Draws alternate between the
  classic-strip *survivor* subset and the full pool, guaranteeing at
  least every other bomb outlives the published single-pattern strip.

* **Response plans** (:meth:`MeshPlanner.plan_response`): tamper
  responses are drawn from the delayed/probabilistic catalog
  (:mod:`repro.core.responses`), decorrelating the response from the
  strip that caused it.

Everything here is driven by the per-app seeded rng, so protection
stays deterministic and the serial/parallel batch guarantee holds.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import BombDroidConfig, ResponseKind
from repro.core.payloads import (
    MeshGuard,
    PayloadSpec,
    build_payload_dex,
    encrypt_payload,
)
from repro.core.responses import ResponsePlan, draw_response_plan
from repro.core.weaving import replace_const_value
from repro.crypto import Salt, sha1_hex
from repro.dex.hashing import method_instruction_hash, method_shape_hash
from repro.dex.model import DexFile
from repro.errors import InstrumentationError
from repro.vm.aliases import ALIASABLE_APIS, alias_table, derive_alias


class PrologueShape(enum.Enum):
    """Semantically equivalent outer-trigger shapes (Listing 3 variants)."""

    CLASSIC = "classic"    # the published Listing-3 order
    SWAPPED = "swapped"    # operand/const order swapped; still strippable
    SPLIT = "split"        # hash compared in two substring halves
    DECOY = "decoy"        # dead decoy compare pushes the live branch out


@dataclass(frozen=True)
class PrologueMorph:
    """One drawn prologue variant: a shape plus the alias switch."""

    shape: PrologueShape
    use_alias: bool = False

    def describe(self) -> str:
        return self.shape.value + ("+alias" if self.use_alias else "")


def survives_classic_strip(morph: PrologueMorph) -> bool:
    """Whether the classic single-pattern stripper misses this variant.

    The published stripper anchors on the literal ``bomb.hash`` invoke
    and patches the first ``if_eqz`` within five instructions.  Aliased
    invokes are never found; SPLIT and DECOY place the live ``if_eqz``
    at offset six (DECOY's in-window branch is an ``if_nez``).
    """
    return morph.use_alias or morph.shape in (PrologueShape.SPLIT, PrologueShape.DECOY)


_ALL_MORPHS: Tuple[PrologueMorph, ...] = tuple(
    PrologueMorph(shape, use_alias)
    for shape in PrologueShape
    for use_alias in (False, True)
)
_SURVIVOR_MORPHS: Tuple[PrologueMorph, ...] = tuple(
    morph for morph in _ALL_MORPHS if survives_classic_strip(morph)
)


def decoy_hex_for(hc_hex: str) -> str:
    """The DECOY shape's dead-compare constant, derived from Hc.

    Any value different from ``hc_hex`` is semantically safe (the
    decoy branch then only fires when X != c, which is already the
    no-match outcome); derivation keeps it deterministic per bomb.
    """
    decoy = sha1_hex(f"decoy|{hc_hex}".encode("utf-8"))
    if decoy == hc_hex:
        decoy = ("0" if decoy[0] != "0" else "1") + decoy[1:]
    return decoy


@dataclass
class PendingSite:
    """One real bomb awaiting the second (mesh) weaving pass."""

    bomb_id: str
    method_name: str
    constant: object
    salt: Salt
    spec: PayloadSpec
    ciphertext: bytes


class MeshPlanner:
    """Per-app drawing of topology, morphs, probes and response plans.

    Constructed only for ``config.mesh`` runs: it consumes rng draws
    (alias key, shuffles), and the unmeshed pipeline must keep its
    exact pre-mesh rng stream.
    """

    def __init__(self, config: BombDroidConfig, rng: random.Random) -> None:
        self._config = config
        self._rng = rng
        #: Per-app alias key; shipped under an innocuous strings.xml
        #: entry so the runtime can resolve aliased invokes.
        self.alias_key = f"{rng.getrandbits(96):024x}"
        self._alias_of = {
            name: derive_alias(self.alias_key, name) for name in ALIASABLE_APIS
        }
        self._draws = 0

    # -- prologue morphing -------------------------------------------------

    def alias_of(self, name: str) -> str:
        """The emitted symbol for framework call ``name``."""
        return self._alias_of.get(name, name)

    def aliases(self) -> Dict[str, str]:
        """``alias -> canonical`` map (for the runtime and the linter)."""
        return alias_table(self.alias_key)

    def next_morph(self) -> PrologueMorph:
        """Draw the next bomb's prologue variant.

        Even-numbered draws come from the classic-strip survivor
        subset, odd ones from the full pool: whatever the per-app rng
        does, at least half the bombs (including the first) outlive
        the published single-pattern strip.
        """
        if not self._config.mesh_morph_prologues:
            return PrologueMorph(PrologueShape.CLASSIC, False)
        pool = _SURVIVOR_MORPHS if self._draws % 2 == 0 else _ALL_MORPHS
        self._draws += 1
        return self._rng.choice(pool)

    # -- inner-trigger probes ---------------------------------------------

    def choose_probes(self) -> Tuple[str, ...]:
        """Anti-analysis probes OR-combined into one bomb's inner trigger."""
        return tuple(
            kind
            for kind in self._config.mesh_probe_kinds
            if self._rng.random() < 0.5
        )

    # -- responses ---------------------------------------------------------

    def plan_response(self, kind: ResponseKind) -> ResponsePlan:
        """A delay/gate envelope around ``kind`` (or immediate when the
        delayed-response catalog is disabled)."""
        if not self._config.mesh_delayed_responses:
            return ResponsePlan(kind=kind)
        return draw_response_plan(kind, self._rng)

    # -- topology ----------------------------------------------------------

    def topology(self, bomb_ids: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
        """``bomb_id -> shape-guard peers`` for the configured topology."""
        ids = list(bomb_ids)
        if len(ids) < 2:
            return {bomb_id: () for bomb_id in ids}
        degree = min(self._config.mesh_degree, len(ids) - 1)
        peers: Dict[str, Tuple[str, ...]] = {}
        if self._config.mesh_topology == "ring":
            order = ids[:]
            self._rng.shuffle(order)
            n = len(order)
            for i, bomb_id in enumerate(order):
                peers[bomb_id] = tuple(
                    order[(i + 1 + j) % n] for j in range(degree)
                )
        else:  # k_regular: degree random distinct peers per bomb
            for bomb_id in ids:
                pool = [other for other in ids if other != bomb_id]
                peers[bomb_id] = tuple(self._rng.sample(pool, degree))
        return peers


def weave_mesh(
    dex: DexFile,
    sites: Sequence[PendingSite],
    planner: MeshPlanner,
    report=None,
    hot_methods: Sequence[str] = (),
) -> Dict[str, Tuple[str, ...]]:
    """Second weaving pass: inject peer guards into every real payload.

    Runs after instrumentation (all bombs placed, all pcs final) and
    before validation.  For each site the payload is rebuilt with its
    guards, re-encrypted under the same (c, salt) materials, and the
    new ciphertext spliced over the old one -- located by value, since
    instrumentation-time splicing shifted every recorded pc.

    Shape digests are precomputed once (they mask bytes constants, so
    our own rewrites never invalidate them).  Content pins chain host
    methods in rebuild order: every bomb in method *i* pins the final
    full hash of method *i-1*, which is already rebuilt when method
    *i*'s payloads are sealed.

    ``hot_methods`` extends the content-pin layer beyond the mesh's own
    hosts: each real bomb additionally pins one hot (cleartext, never
    instrumented) app method, assigned round-robin so every hot method
    is covered many times over.  An attacker's edit to hot code -- the
    vtable-hijack scenario's ad-SDK insertion -- then trips whichever
    reachable bomb pins it, even while the identity APIs are perfectly
    spoofed.  Hosts are excluded from the pool: their hashes change as
    the mesh reseals them, and the rebuild-order chain already covers
    them.
    """
    real = [site for site in sites if site.spec.detection is not None]
    if len(real) < 2:
        return {}

    peers = planner.topology([site.bomb_id for site in real])
    by_id = {site.bomb_id: site for site in real}
    shape_hex = {
        site.bomb_id: method_shape_hash(dex.get_method(site.method_name))
        for site in real
    }

    method_order: List[str] = []
    for site in real:
        if site.method_name not in method_order:
            method_order.append(site.method_name)

    hot_pool = [name for name in hot_methods if name not in method_order]
    hot_hex = {
        name: method_instruction_hash(dex.get_method(name)) for name in hot_pool
    }
    hot_pin_of: Dict[str, str] = {}
    if hot_pool:
        for index, site in enumerate(real):
            hot_pin_of[site.bomb_id] = hot_pool[index % len(hot_pool)]

    for index, method_name in enumerate(method_order):
        pin: Optional[MeshGuard] = None
        if index > 0:
            prev = method_order[index - 1]
            pin = MeshGuard(
                peer_id="",
                peer_method=prev,
                expected_hex=method_instruction_hash(dex.get_method(prev)),
                kind="content",
            )
        for site in real:
            if site.method_name != method_name:
                continue
            guards = [
                MeshGuard(
                    peer_id=peer_id,
                    peer_method=by_id[peer_id].method_name,
                    expected_hex=shape_hex[peer_id],
                    kind="shape",
                )
                for peer_id in peers.get(site.bomb_id, ())
            ]
            if pin is not None:
                guards.append(pin)
            hot_pin = hot_pin_of.get(site.bomb_id)
            if hot_pin is not None:
                guards.append(
                    MeshGuard(
                        peer_id="",
                        peer_method=hot_pin,
                        expected_hex=hot_hex[hot_pin],
                        kind="content",
                    )
                )
            if not guards:
                continue
            plan = planner.plan_response(site.spec.response or ResponseKind.CRASH)
            new_spec = dc_replace(
                site.spec, mesh_guards=tuple(guards), mesh_response=plan
            )
            new_ciphertext = encrypt_payload(
                build_payload_dex(new_spec), site.constant, site.salt
            )
            host = dex.get_method(site.method_name)
            if not replace_const_value(host, site.ciphertext, new_ciphertext):
                raise InstrumentationError(
                    f"mesh: ciphertext for {site.bomb_id} not found "
                    f"in {site.method_name}"
                )
            site.spec = new_spec
            site.ciphertext = new_ciphertext
            if report is not None:
                bomb = report.bomb_by_id(site.bomb_id)
                bomb.mesh_peers = tuple(peers.get(site.bomb_id, ()))
                bomb.content_pin = ",".join(
                    name
                    for name in (
                        pin.peer_method if pin is not None else "",
                        hot_pin or "",
                    )
                    if name
                )
                bomb.response_plan = plan.describe()
    return peers
