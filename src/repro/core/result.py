"""The first-class result of one protection run.

``BombDroid.protect()`` historically returned a bare
``(protected_apk, report)`` tuple; batch protection needs more -- how
long each stage took, which derived seed the run used, and whether the
artifact came out of the content-addressed cache.  ``ProtectionResult``
carries all of that while still unpacking like the old 2-tuple::

    protected, report = BombDroid(config).protect(apk, key)   # still works
    result = BombDroid(config).protect(apk, key)
    result.apk, result.report, result.timings, result.app_seed

Stage timings are wall-clock seconds keyed by stage name (``unpack``,
``profile``, ``instrument``, ``verify``, ``package``); they are the
only non-deterministic field -- the APK bytes and the report are fully
determined by (input APK, config, code version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Union

from repro.apk.package import Apk
from repro.core.stats import InstrumentationReport

#: Stage names in pipeline order, as used in ``timings``.
STAGES = ("unpack", "profile", "instrument", "verify", "package")


@dataclass
class ProtectionResult:
    """Everything produced by one ``protect()`` call.

    Tuple-compatible: iterating or indexing yields ``(apk, report)``,
    so pre-existing ``protected, report = ...`` call sites keep
    working.
    """

    apk: Apk
    report: InstrumentationReport
    #: Wall-clock seconds per pipeline stage (see :data:`STAGES`).
    timings: Dict[str, float] = field(default_factory=dict)
    #: The per-app seed actually used (config.seed mixed with the app's
    #: dex digest), recorded for reproducibility.
    app_seed: int = 0
    #: Cache provenance: True when the artifact was served from the
    #: batch pipeline's content-addressed cache instead of computed.
    cache_hit: bool = False
    #: The content-addressed cache key (hex), when one was computed.
    cache_key: Optional[str] = None

    # -- 2-tuple compatibility ------------------------------------------------

    def __iter__(self) -> Iterator[Union[Apk, InstrumentationReport]]:
        return iter((self.apk, self.report))

    def __getitem__(self, index: int) -> Union[Apk, InstrumentationReport]:
        return (self.apk, self.report)[index]

    def __len__(self) -> int:
        return 2

    # -- conveniences ---------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Wall-clock total across recorded stages."""
        return sum(self.timings.values())

    def summary(self) -> str:
        origin = "cache" if self.cache_hit else "computed"
        return (
            f"{self.report.summary()} [{origin}, "
            f"{self.total_seconds:.3f}s, seed {self.app_seed}]"
        )
