"""Payload synthesis: the encrypted half of a logic bomb.

A payload is a one-class DexFile::

    class Bomb$<id>:
        static leak = null
        run(register_array) -> register_array'

``run`` receives the caller's *live* registers (the ones the woven body
references) as an array of size ``n + 2`` (n live registers, a control
slot, a return-value slot), and:

1. unpacks the array into local registers (slot i -> local i+1);
2. evaluates the *inner trigger* (encrypted, so the attacker cannot see
   which environment is tested); when met, runs repackaging detection
   and -- on a key mismatch -- the response;
3. executes the woven original body, if any;
4. repacks the registers and returns the array; the control slot tells
   the caller to fall through (0), return a value (1) or return void (2).

The blob is serialized and AES-128-CBC encrypted under
``KDF(c | salt)``; only a runtime value of X equal to the removed
constant can reconstruct the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import DetectionMethod, ResponseKind
from repro.core.inner_triggers import InnerCondition
from repro.core.responses import (
    LEAK_FIELD,
    MESH_OK_FIELD,
    TRIP_COUNT_FIELD,
    ResponsePlan,
    emit_planned_response,
    emit_response,
)
from repro.core.weaving import EPILOGUE_LABEL
from repro.crypto import AES128, Salt, derive_key
from repro.dex.builder import MethodBuilder
from repro.dex.instructions import Instr
from repro.dex.model import DexClass, DexField, DexFile
from repro.dex.opcodes import Op
from repro.dex.serializer import deserialize_dex, serialize_dex
from repro.errors import InstrumentationError

#: Control-slot protocol.
CONTROL_FALLTHROUGH = 0
CONTROL_RETURN_VALUE = 1
CONTROL_RETURN_VOID = 2

#: Fixed IV for payload encryption; safe because every bomb has a
#: unique salt and therefore a unique key.
PAYLOAD_IV = b"\x00" * 16


@dataclass
class DetectionSpec:
    """What the detection code compares against."""

    method: DetectionMethod
    #: PUBLIC_KEY: the original key fingerprint (hex).
    original_key_hex: str = ""
    #: CODE_DIGEST: strings.xml key of the stego carrier + hidden length.
    stego_key: str = ""
    stego_digest_bytes: int = 8
    #: CODE_SCAN: the pinned method and its expected instruction hash.
    scan_target: str = ""
    scan_expected_hex: str = ""


@dataclass(frozen=True)
class MeshGuard:
    """One peer-integrity check emitted at the top of a payload.

    ``kind`` selects the digest the guard compares: ``"shape"`` uses
    ``bomb.shape_digest`` (bytes constants masked, so the digest is
    invariant under the mesh's own ciphertext rewrites but changes when
    a prologue branch is stripped or the method is deleted), and
    ``"content"`` uses ``bomb.method_digest`` (the full instruction
    hash, which additionally pins peer ciphertext against blanking).
    """

    peer_id: str
    peer_method: str
    expected_hex: str
    kind: str = "shape"


@dataclass
class PayloadSpec:
    """Everything needed to synthesize one payload."""

    bomb_id: str
    payload_class: str
    slots: int                       # number of live caller registers
    app_name: str
    inner: Optional[InnerCondition] = None
    detection: Optional[DetectionSpec] = None     # None => bogus bomb
    response: Optional[ResponseKind] = None
    woven_body: Sequence[Instr] = ()              # prepared by weaving.py
    null_target: Optional[str] = None
    #: Qualified static flag field for strategic muting; when set, the
    #: payload skips detection once any bomb has already detected.
    mute_flag: Optional[str] = None
    #: Total payload-local registers backing the woven body (defaults to
    #: ``slots``); liveness analysis lets region-internal temporaries
    #: live here without occupying array slots.
    local_count: Optional[int] = None
    #: Payload-local register carried by each array slot (defaults to
    #: locals 1..slots in order).
    slot_locals: Optional[Tuple[int, ...]] = None
    #: Cross-reference guards over peer bombs (repro.core.mesh); empty
    #: for unmeshed protections, which therefore serialize byte-identically
    #: to the pre-mesh pipeline.
    mesh_guards: Tuple[MeshGuard, ...] = ()
    #: Response envelope for a tripped mesh guard (CRASH when unset).
    mesh_response: Optional[ResponsePlan] = None
    #: Delay/gate envelope for the detection response; ``None`` keeps the
    #: classic immediate :func:`emit_response` path.
    response_plan: Optional[ResponsePlan] = None

    def resolved_locals(self) -> Tuple[int, Tuple[int, ...]]:
        count = self.local_count if self.local_count is not None else self.slots
        mapping = (
            self.slot_locals
            if self.slot_locals is not None
            else tuple(range(1, self.slots + 1))
        )
        if len(mapping) != self.slots:
            raise InstrumentationError("slot mapping does not match slot count")
        if any(not 1 <= local <= count for local in mapping):
            raise InstrumentationError("slot mapping outside local range")
        return count, mapping

    @property
    def entry(self) -> str:
        return f"{self.payload_class}.run"


def build_payload_dex(spec: PayloadSpec) -> DexFile:
    """Synthesize the payload DexFile for ``spec``."""
    r = spec.slots
    local_count, slot_locals = spec.resolved_locals()
    builder = MethodBuilder(spec.payload_class, "run", params=1)
    # Reserve payload-local registers 1..local_count (array-carried
    # values plus region-internal temporaries).
    for expected in range(1, local_count + 1):
        if builder.reg() != expected:
            raise InstrumentationError("payload register layout broken")

    index_reg = builder.reg()

    # -- unpack ------------------------------------------------------------
    for i, local in enumerate(slot_locals):
        builder.const(index_reg, i)
        builder.aget(local, 0, index_reg)

    # Default control: fall through.
    control_reg = builder.const_new(CONTROL_FALLTHROUGH)
    builder.const(index_reg, r)
    builder.aput(control_reg, 0, index_reg)

    # -- mesh guards -------------------------------------------------------
    # Peer-integrity checks run before the inner trigger: tampering with
    # a peer bomb is proof of manipulation regardless of which device or
    # environment this copy runs on.  Tampering is static, so a payload
    # that once saw its whole mesh intact records that in a class static
    # and skips re-verification -- keeping steady-state guard cost (and
    # the Table 5 overhead delta) near zero.  A tripped run never sets
    # the flag: delayed/gated responses keep counting trips.
    if spec.mesh_guards:
        verified = builder.reg()
        builder.sget(verified, f"{spec.payload_class}.{MESH_OK_FIELD}")
        guards_done = builder.fresh_label("mesh_done")
        builder.if_nez(verified, guards_done)
        clean_reg = builder.const_new(1)
        guard_api = {"shape": "bomb.shape_digest", "content": "bomb.method_digest"}
        for guard in spec.mesh_guards:
            target = builder.const_new(guard.peer_method)
            current = builder.reg()
            builder.invoke(current, guard_api[guard.kind], (target,))
            expected = builder.const_new(guard.expected_hex)
            intact = builder.reg()
            builder.invoke(intact, "java.str.equals", (current, expected))
            ok = builder.fresh_label("mesh_ok")
            builder.if_nez(intact, ok)
            builder.const(clean_reg, 0)
            id_reg = builder.const_new(spec.bomb_id)
            trip_reg = builder.const_new("mesh_tripped")
            builder.invoke(None, "bomb.mark", (id_reg, trip_reg))
            emit_planned_response(
                builder,
                spec.mesh_response or ResponsePlan(kind=ResponseKind.CRASH),
                spec.bomb_id,
                spec.payload_class,
                spec.app_name,
                null_target=spec.null_target,
            )
            builder.label(ok)
        builder.if_eqz(clean_reg, guards_done)
        builder.sput(clean_reg, f"{spec.payload_class}.{MESH_OK_FIELD}")
        builder.label(guards_done)

    # -- inner trigger + detection -----------------------------------------
    if spec.detection is not None:
        skip_detect = builder.fresh_label("skip_detect")
        if spec.mute_flag is not None:
            # Strategic muting: stay quiet if another bomb already spoke.
            muted = builder.reg()
            builder.sget(muted, spec.mute_flag)
            builder.if_nez(muted, skip_detect)
        if spec.inner is not None:
            condition_reg = spec.inner.emit(builder)
            builder.if_eqz(condition_reg, skip_detect)
        id_reg = builder.const_new(spec.bomb_id)
        met_reg = builder.const_new("inner_met")
        builder.invoke(None, "bomb.mark", (id_reg, met_reg))
        _emit_detection(builder, spec)
        builder.label(skip_detect)

    # -- woven body -----------------------------------------------------------
    for instr in spec.woven_body:
        if instr.op is Op.RETURN:
            _emit_exit(builder, index_reg, r, CONTROL_RETURN_VALUE, value_reg=instr.a)
        elif instr.op is Op.RETURN_VOID:
            _emit_exit(builder, index_reg, r, CONTROL_RETURN_VOID)
        else:
            builder.emit(instr)

    # -- epilogue ---------------------------------------------------------------
    builder.label(EPILOGUE_LABEL)
    for i, local in enumerate(slot_locals):
        builder.const(index_reg, i)
        builder.aput(local, 0, index_reg)
    builder.ret(0)

    method = builder.build()
    cls = DexClass(name=spec.payload_class)
    cls.add_field(DexField(name=LEAK_FIELD, static=True, initial=None))
    if spec.mesh_guards:
        cls.add_field(DexField(name=MESH_OK_FIELD, static=True, initial=0))
    if _needs_trip_counter(spec):
        cls.add_field(DexField(name=TRIP_COUNT_FIELD, static=True, initial=0))
    cls.add_method(method)
    dex = DexFile()
    dex.add_class(cls)
    dex.validate()
    return dex


def _needs_trip_counter(spec: PayloadSpec) -> bool:
    """Whether any emitted response plan reads the delay counter.

    The static field is declared only when some plan is delayed, so
    unmeshed payloads keep their exact pre-mesh serialization.
    """
    plans = [spec.response_plan]
    if spec.mesh_guards:
        plans.append(spec.mesh_response or ResponsePlan(kind=ResponseKind.CRASH))
    return any(plan is not None and plan.delay_marks > 0 for plan in plans)


def _emit_exit(
    builder: MethodBuilder, index_reg: int, r: int, control: int, value_reg: int = None
) -> None:
    """Rewrite a woven RETURN: store control (and value), jump to epilogue."""
    control_const = builder.const_new(control)
    builder.const(index_reg, r)
    builder.aput(control_const, 0, index_reg)
    if value_reg is not None:
        builder.const(index_reg, r + 1)
        builder.aput(value_reg, 0, index_reg)
    builder.goto(EPILOGUE_LABEL)


def _emit_detection(builder: MethodBuilder, spec: PayloadSpec) -> None:
    """Repackaging check for the configured method; response on mismatch."""
    detection = spec.detection
    match_reg = builder.reg()

    if detection.method is DetectionMethod.PUBLIC_KEY:
        current = builder.reg()
        builder.invoke(current, "android.pm.get_public_key", ())
        original = builder.const_new(detection.original_key_hex)
        builder.invoke(match_reg, "java.str.equals", (current, original))
    elif detection.method is DetectionMethod.CODE_DIGEST:
        carrier = builder.reg()
        key = builder.const_new(detection.stego_key)
        builder.invoke(carrier, "android.res.get_string", (key,))
        hidden = builder.reg()
        length = builder.const_new(detection.stego_digest_bytes)
        builder.invoke(hidden, "bomb.stego_extract", (carrier, length))
        current = builder.reg()
        entry = builder.const_new("classes.dex")
        builder.invoke(current, "android.pm.get_manifest_digest", (entry,))
        builder.invoke(match_reg, "java.str.starts_with", (current, hidden))
    elif detection.method is DetectionMethod.CODE_SCAN:
        current = builder.reg()
        target = builder.const_new(detection.scan_target)
        builder.invoke(current, "android.pm.get_method_hash", (target,))
        expected = builder.const_new(detection.scan_expected_hex)
        builder.invoke(match_reg, "java.str.equals", (current, expected))
    else:
        raise InstrumentationError(f"unhandled detection method {detection.method!r}")

    genuine = builder.fresh_label("genuine")
    builder.if_nez(match_reg, genuine)
    id_reg = builder.const_new(spec.bomb_id)
    detected_reg = builder.const_new("detected")
    builder.invoke(None, "bomb.mark", (id_reg, detected_reg))
    if spec.mute_flag is not None:
        flag_reg = builder.const_new(True)
        builder.sput(flag_reg, spec.mute_flag)
    if spec.response_plan is not None:
        emit_planned_response(
            builder,
            spec.response_plan,
            spec.bomb_id,
            spec.payload_class,
            spec.app_name,
            null_target=spec.null_target,
        )
    else:
        emit_response(
            builder,
            spec.response or ResponseKind.CRASH,
            spec.bomb_id,
            spec.payload_class,
            spec.app_name,
            null_target=spec.null_target,
        )
    builder.label(genuine)


def encrypt_payload(dex: DexFile, constant, salt: Salt) -> bytes:
    """Serialize and encrypt a payload under ``KDF(constant | salt)``."""
    key = derive_key(constant, salt)
    return AES128(key).encrypt_cbc(serialize_dex(dex), PAYLOAD_IV)


def decrypt_payload(ciphertext: bytes, constant, salt: Salt) -> DexFile:
    """Inverse of :func:`encrypt_payload`, for tooling and tests.

    At runtime the VM decrypts through the ``bomb.decrypt`` framework
    call so failures hit the containment boundary; this helper raises
    the raw taxonomy instead (``BadPaddingError``/``CryptoError`` under
    a wrong key, ``DexFormatError`` for a corrupt blob).
    """
    key = derive_key(constant, salt)
    return deserialize_dex(AES128(key).decrypt_cbc(ciphertext, PAYLOAD_IV))
