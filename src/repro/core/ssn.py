"""SSN (Stochastic Stealthy Network), the vulnerable baseline.

Reimplements the Listing-1 design the paper attacks (Section 2.1):

* repackaging detection invoked **probabilistically** (``rand() < 1%``);
* the ``getPublicKey`` call hidden behind **reflection**, its name
  stored **obfuscated** (reversed) so text search fails;
* the original public key stored as a **plaintext constant**;
* the response **delayed**: detection arms a flag, and a separate
  check woven into handlers fires a few events later.

Every one of these measures is bypassable -- the attack suite
demonstrates it: code instrumentation makes ``rand`` deterministic and
logs reflection destinations; symbolic execution walks straight past
the probabilistic guard; the plaintext key constant is patchable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.apk.package import Apk, build_apk
from repro.crypto import RSAKeyPair
from repro.dex import instructions as ins
from repro.dex.instructions import Instr, Label
from repro.dex.model import DexField, DexFile, DexMethod
from repro.dex.opcodes import Op
from repro.errors import InstrumentationError

#: Static flag field armed on detection (delayed response).
FLAG_FIELD = "ssn$flag"
COUNT_FIELD = "ssn$count"

#: Events between detection and the delayed crash.
RESPONSE_DELAY = 3

#: rand() < this/10000 gates each detection attempt (SSN's "very low
#: probability").
PROBABILITY_BASIS = 10_000


@dataclass
class SSNConfig:
    seed: int = 0
    #: Detection probability per instrumented entry (paper: very low).
    probability: float = 0.01
    #: Fraction of methods that receive a detection node.
    site_fraction: float = 0.5


@dataclass
class SSNReport:
    """Where SSN placed its detection nodes."""

    sites: List[str] = field(default_factory=list)
    obfuscated_name: str = ""
    plaintext_key_hex: str = ""


class SSNProtector:
    """Builds SSN-style repackaging detection into an app."""

    def __init__(self, config: SSNConfig = None) -> None:
        self.config = config or SSNConfig()

    def protect(self, apk: Apk, developer_key: RSAKeyPair) -> Tuple[Apk, SSNReport]:
        rng = random.Random(self.config.seed)
        dex = apk.dex()
        resources = apk.resources().copy()
        original_key_hex = apk.cert.fingerprint_hex()
        report = SSNReport(
            obfuscated_name="android.pm.get_public_key"[::-1],
            plaintext_key_hex=original_key_hex,
        )

        flag_holder = sorted(dex.classes)[0]
        holder = dex.classes[flag_holder]
        if FLAG_FIELD not in holder.fields:
            holder.add_field(DexField(name=FLAG_FIELD, static=True, initial=0))
            holder.add_field(DexField(name=COUNT_FIELD, static=True, initial=0))
        flag = f"{flag_holder}.{FLAG_FIELD}"
        count = f"{flag_holder}.{COUNT_FIELD}"

        methods = sorted(m.qualified_name for m in dex.iter_methods())
        rng.shuffle(methods)
        chosen = methods[: max(1, int(len(methods) * self.config.site_fraction))]
        threshold = max(1, int(self.config.probability * PROBABILITY_BASIS))

        for name in sorted(chosen):
            method = dex.get_method(name)
            block = self._detection_block(method, threshold, original_key_hex, flag, count)
            method.instructions[0:0] = block
            method.invalidate()
            method.validate()
            report.sites.append(name)

        dex.validate()
        return build_apk(dex, resources, developer_key), report

    def _detection_block(
        self,
        method: DexMethod,
        threshold: int,
        key_hex: str,
        flag: str,
        count: str,
    ) -> List[Instr]:
        """The Listing-1 structure, prepended to a method."""
        base = method.grow_registers(10)
        (r_rand, r_lim, r_rev, r_name, r_i, r_len, r_ch, r_key, r_pub, r_eq) = range(
            base, base + 10
        )
        suffix = f"ssn_{method.class_name}_{method.name}"
        skip = f"__{suffix}_skip"
        loop = f"__{suffix}_loop"
        loop_done = f"__{suffix}_done"
        armed = f"__{suffix}_armed"
        ok = f"__{suffix}_ok"

        block: List[Instr] = [
            # if (rand() < 1%) { ... }
            ins.const(r_lim, PROBABILITY_BASIS),
            ins.invoke(r_rand, "java.rand.next", (r_lim,)),
            ins.const(r_lim, threshold),
            Instr(Op.IF_GE, a=r_rand, b=r_lim, target=skip),
            # funName = recoverFunName(obfuscatedStr): un-reverse it,
            # one character per iteration (name += rev[i:i+1]).
            ins.const(r_rev, "android.pm.get_public_key"[::-1]),
            ins.const(r_name, ""),
            ins.invoke(r_len, "java.str.length", (r_rev,)),
            ins.binop_lit(Op.SUB_LIT, r_i, r_len, 1),
            Label(loop),
            Instr(Op.IF_LTZ, a=r_i, target=loop_done),
            ins.binop_lit(Op.ADD_LIT, r_ch, r_i, 1),
            ins.invoke(r_ch, "java.str.substring", (r_rev, r_i, r_ch)),
            ins.invoke(r_name, "java.str.concat", (r_name, r_ch)),
            ins.binop_lit(Op.SUB_LIT, r_i, r_i, 1),
            ins.goto(loop),
            Label(loop_done),
            # currKey = reflectionCall(funName)
            ins.invoke(r_key, "android.reflect.call", (r_name,)),
            ins.const(r_pub, key_hex),
            ins.invoke(r_eq, "java.str.equals", (r_key, r_pub)),
            Instr(Op.IF_NEZ, a=r_eq, target=skip),
            # repackaging detected -> arm the delayed response
            ins.const(r_eq, 1),
            ins.sput(r_eq, flag),
            Label(skip),
            # delayed-response pump: crash RESPONSE_DELAY activations later
            ins.sget(r_eq, flag),
            Instr(Op.IF_EQZ, a=r_eq, target=ok),
            ins.sget(r_eq, count),
            ins.binop_lit(Op.ADD_LIT, r_eq, r_eq, 1),
            ins.sput(r_eq, count),
            ins.const(r_lim, RESPONSE_DELAY),
            Instr(Op.IF_LT, a=r_eq, b=r_lim, target=ok),
            ins.const(r_eq, "SSN: repackaging response"),
            ins.throw(r_eq),
            Label(ok),
        ]
        return block
