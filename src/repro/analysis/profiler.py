"""Hot-method profiling (the Dynodroid + Traceview step, Section 7.1).

BombDroid feeds ~10,000 random events to the app, logs per-method
invocation counts, marks the top 10% most-invoked methods *hot*, and
instruments only the remaining *candidate* methods -- the main lever
behind the ~2.6% overhead result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.dex.model import DexFile
from repro.errors import VMError
from repro.vm.interpreter import CountingTracer


@dataclass
class HotMethodProfile:
    """Invocation counts plus the hot/candidate split."""

    invocation_counts: Dict[str, int]
    hot_methods: Set[str]
    candidate_methods: List[str]
    events_played: int = 0

    def is_hot(self, qualified_name: str) -> bool:
        return qualified_name in self.hot_methods


def profile_hot_methods(
    runtime,
    events: Iterable,
    top_fraction: float = 0.10,
    event_budget: int = 50_000,
    on_event=None,
) -> HotMethodProfile:
    """Play ``events`` against ``runtime`` and split hot vs candidate.

    Methods never invoked during profiling count as cold (0 invocations).
    The top ``top_fraction`` *by invocation count* are hot; ties at the
    boundary are resolved toward marking more methods hot (safer for
    overhead).  Crashing events are tolerated -- random streams do hit
    guard rails.  ``on_event(index, runtime)`` fires after each event;
    the field-entropy profiler samples through it.
    """
    tracer = CountingTracer()
    runtime.add_tracer(tracer)
    played = 0
    try:
        for event in events:
            try:
                runtime.dispatch(event, budget=event_budget)
            except VMError:
                pass
            played += 1
            if on_event is not None:
                on_event(played, runtime)
    finally:
        runtime.remove_tracer(tracer)

    app_methods = [m.qualified_name for m in runtime.app_dex.iter_methods()]
    counts = {name: tracer.invocations.get(name, 0) for name in app_methods}

    hot_count = max(1, math.ceil(len(app_methods) * top_fraction)) if app_methods else 0
    by_heat = sorted(app_methods, key=lambda name: (-counts[name], name))
    hot = {name for name in by_heat[:hot_count] if counts[name] > 0}
    candidates = [name for name in by_heat if name not in hot]
    candidates.sort()
    return HotMethodProfile(
        invocation_counts=counts,
        hot_methods=hot,
        candidate_methods=candidates,
        events_played=played,
    )
