"""Live-variable analysis (backward may-analysis over the CFG).

Used by the instrumenter to shrink bomb payload arrays: a register the
woven body only uses as a scratch temporary (dead on entry, dead at the
join) never needs to travel through the caller/payload array at all.

Standard worklist formulation at instruction granularity::

    live_out[pc] = union of live_in[successors of pc]
    live_in[pc]  = reads(pc) | (live_out[pc] - writes(pc))

Method parameters are treated as defined at entry; every register is
dead at RETURN_VOID, only the returned register is live at RETURN.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import build_cfg
from repro.dex.model import DexMethod
from repro.dex.opcodes import CONDITIONAL_BRANCHES, Op, UNCONDITIONAL_EXITS


def instruction_successors(method: DexMethod) -> List[Tuple[int, ...]]:
    """Per-pc successor lists (instruction granularity)."""
    instructions = method.instructions
    labels = method.label_map()
    out: List[Tuple[int, ...]] = []
    last = len(instructions)
    for pc, instr in enumerate(instructions):
        op = instr.op
        successors: List[int] = []
        if op is Op.GOTO:
            successors.append(labels[instr.target])
        elif op in CONDITIONAL_BRANCHES:
            successors.append(labels[instr.target])
            if pc + 1 < last:
                successors.append(pc + 1)
        elif op is Op.SWITCH:
            successors.extend(labels[t] for t in instr.value.values())
            if pc + 1 < last:
                successors.append(pc + 1)
        elif op in (Op.RETURN, Op.RETURN_VOID, Op.THROW):
            pass
        else:
            if pc + 1 < last:
                successors.append(pc + 1)
        out.append(tuple(dict.fromkeys(successors)))
    return out


def liveness(method: DexMethod) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Return ``(live_in, live_out)`` register sets per pc."""
    instructions = method.instructions
    successors = instruction_successors(method)
    count = len(instructions)
    live_in: List[Set[int]] = [set() for _ in range(count)]
    live_out: List[Set[int]] = [set() for _ in range(count)]

    # Iterate to a fixpoint, walking backwards for fast convergence.
    changed = True
    while changed:
        changed = False
        for pc in range(count - 1, -1, -1):
            instr = instructions[pc]
            out_set: Set[int] = set()
            for successor in successors[pc]:
                out_set |= live_in[successor]
            in_set = set(instr.reads()) | (out_set - set(instr.writes()))
            if out_set != live_out[pc] or in_set != live_in[pc]:
                live_out[pc] = out_set
                live_in[pc] = in_set
                changed = True
    return live_in, live_out


def live_registers_for_region(
    method: DexMethod, start: int, end: int
) -> Set[int]:
    """Registers a woven region must exchange with its caller.

    The union of:

    * registers live on entry to the region (the body reads them before
      writing), and
    * registers the region writes that are still live at the join point
      (code after the bomb reads them).

    Registers referenced only as region-internal temporaries are
    excluded -- they get payload-local storage but no array slot.

    The join is taken at the region's actual exits: a region that
    leaves through a GOTO (or ends in a RETURN) contributes the
    liveness of the *target* pc, not of whatever instruction happens to
    sit at ``end`` textually.
    """
    live_in, _ = liveness(method)
    successors = instruction_successors(method)
    entry_live = set(live_in[start]) if start < len(live_in) else set()

    writes: Set[int] = set()
    reads: Set[int] = set()
    join_live: Set[int] = set()
    for pc in range(start, min(end, len(method.instructions))):
        instr = method.instructions[pc]
        reads |= set(instr.reads())
        writes |= set(instr.writes())
        for successor in successors[pc]:
            if not start <= successor < end:
                join_live |= live_in[successor]

    referenced = reads | writes
    return referenced & (entry_live | (writes & join_live))
