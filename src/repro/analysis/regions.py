"""Weavable body regions.

Code weaving (Section 3.4) moves the *body* of an existing qualified
condition into the encrypted payload, so deleting the bomb deletes
original app code.  A body is extractable only when it is a
single-entry region whose exits we can model:

* fall through to the region end,
* jump to the designated exit label (the original join point),
* return or throw (handled via the payload's control slot).

``body_region(method, qc)`` locates the region for a QC; returns None
when the shape is not weavable (the bomb is then inserted payload-only,
which the paper permits -- weaving is a countermeasure, not a
requirement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.analysis.qualified_conditions import QCKind, QualifiedCondition
from repro.dex.model import DexMethod
from repro.dex.opcodes import CONDITIONAL_BRANCHES, Op


@dataclass(frozen=True)
class BodyRegion:
    """Instructions ``[start, end)`` plus the join label after the body."""

    start: int
    end: int
    exit_label: str

    def pcs(self) -> range:
        return range(self.start, self.end)


def _labels_inside(method: DexMethod, start: int, end: int) -> Set[str]:
    return {
        instr.value
        for instr in method.instructions[start:end]
        if instr.op is Op.LABEL
    }


def _targets_of(instr) -> List[str]:
    targets = []
    if instr.target is not None:
        targets.append(instr.target)
    if instr.op is Op.SWITCH:
        targets.extend(instr.value.values())
    return targets


def region_is_weavable(method: DexMethod, start: int, end: int, exit_label: str) -> bool:
    """Check the single-entry / known-exit contract for ``[start, end)``."""
    if end <= start:
        return False
    inside = _labels_inside(method, start, end)

    # Every branch inside must target a label inside the region or the
    # exit label.
    for instr in method.instructions[start:end]:
        for target in _targets_of(instr):
            if target != exit_label and target not in inside:
                return False

    # No label inside may be targeted from outside the region.
    for pc, instr in enumerate(method.instructions):
        if start <= pc < end:
            continue
        for target in _targets_of(instr):
            if target in inside:
                return False
    return True


def body_region(method: DexMethod, qc: QualifiedCondition) -> Optional[BodyRegion]:
    """The weavable body of ``qc``, or None.

    Weavable shapes (all "equality falls through" compiler patterns):

    * ``if_ne X, c, @skip; BODY; @skip:`` -- the classic ``if (X==c)``;
    * ``invoke rT, java.str.equals, ...; if_eqz rT, @skip; BODY; @skip:``;
    * a switch case whose body runs from its label to an unconditional
      ``goto @join`` (the break), with @join outside the case ladder.
    """
    instructions = method.instructions

    if qc.kind is QCKind.SWITCH_CASE:
        return _switch_case_region(method, qc)

    if qc.equal_jumps:
        # Equality transfers to the target: the body lives at the label
        # and its join is unknown without a full region analysis; treat
        # as non-weavable.
        return None

    skip_label = instructions[qc.branch_pc].target
    try:
        end = method.resolve(skip_label)
    except Exception:
        return None
    start = qc.branch_pc + 1
    if end <= start:
        return None
    if not region_is_weavable(method, start, end, skip_label):
        return None
    return BodyRegion(start=start, end=end, exit_label=skip_label)


def _switch_case_region(method: DexMethod, qc: QualifiedCondition) -> Optional[BodyRegion]:
    instructions = method.instructions
    switch = instructions[qc.branch_pc]
    case_label = switch.value.get(qc.case_key)
    if case_label is None:
        return None
    start = method.resolve(case_label) + 1  # skip the label marker itself

    # Walk forward to the terminating break (an unconditional goto out),
    # a return, or a throw.
    pc = start
    while pc < len(instructions):
        instr = instructions[pc]
        if instr.op is Op.GOTO:
            exit_label = instr.target
            end = pc + 1
            # The break target must be outside the case body itself.
            if exit_label in _labels_inside(method, start, end):
                return None
            if not region_is_weavable(method, start, end, exit_label):
                return None
            return BodyRegion(start=start, end=end, exit_label=exit_label)
        if instr.op in (Op.RETURN, Op.RETURN_VOID, Op.THROW):
            end = pc + 1
            # Returns need no join; use a sentinel exit that the weaver
            # recognizes (control slot forces the caller to return).
            if not region_is_weavable(method, start, end, ""):
                return None
            return BodyRegion(start=start, end=end, exit_label="")
        if instr.op is Op.LABEL and instr.value in set(method.instructions[qc.branch_pc].value.values()):
            # Fell into the next case: not weavable.
            return None
        if instr.op in CONDITIONAL_BRANCHES or instr.op is Op.SWITCH:
            # Conditional control inside a case is fine only if it stays
            # inside; region_is_weavable re-checks at the end, but we
            # cannot yet know the end -- keep walking.
            pass
        pc += 1
    return None
