"""Local def-use helpers: constant tracking and definition sites.

The qualified-condition finder needs to know whether a branch operand
holds a *statically determinable constant* at the branch.  We resolve
this with a conservative backward scan inside the basic block: follow
MOVE chains, stop at block boundaries (labels, terminators) and at any
intervening redefinition.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dex.model import DexMethod
from repro.dex.opcodes import Op, TERMINATORS


def constant_in_block(method: DexMethod, pc: int, reg: int) -> Optional[Tuple[int, object]]:
    """If ``reg`` provably holds a constant at ``pc``, return
    ``(def_pc, value)`` of the defining CONST; otherwise None.

    Only scans backwards within the basic block (a label or terminator
    stops the scan), following MOVE chains.
    """
    instructions = method.instructions
    cursor = pc - 1
    target = reg
    while cursor >= 0:
        instr = instructions[cursor]
        if instr.op is Op.LABEL or instr.op in TERMINATORS:
            return None
        writes = instr.writes()
        if target in writes:
            if instr.op is Op.CONST:
                return cursor, instr.value
            if instr.op is Op.MOVE:
                target = instr.a
                cursor -= 1
                continue
            return None
        cursor -= 1
    return None


def definition_sites(method: DexMethod, reg: int) -> List[int]:
    """All pcs whose instruction writes ``reg`` (parameters not counted)."""
    return [
        pc
        for pc, instr in enumerate(method.instructions)
        if reg in instr.writes()
    ]


def use_sites(method: DexMethod, reg: int) -> List[int]:
    """All pcs whose instruction reads ``reg``."""
    return [
        pc
        for pc, instr in enumerate(method.instructions)
        if reg in instr.reads()
    ]


def register_used_once(method: DexMethod, reg: int, use_pc: int) -> bool:
    """True when ``use_pc`` is the *only* read of ``reg`` in the method.

    The instrumenter may then delete the defining CONST -- "the constant
    value c, which works as the key, is removed from the code"
    (Section 3.2) -- without breaking other uses.
    """
    uses = use_sites(method, reg)
    return uses == [use_pc]
