"""Bytecode verifier: abstract interpretation over :class:`DexMethod` bodies.

The instrumenter performs delicate surgery -- erasing trigger constants,
weaving bodies into encrypted payloads, rewriting switch tables -- and
the paper's resilience argument rests on the result still being a
well-formed program.  This module plays the Dalvik verifier's role for
the repro ISA: a forward dataflow pass over a per-pc register-state
lattice, plus structural checks the dataflow needs to even start.

Lattice (per register)::

        UNINIT          never assigned on any path to this pc
        MAYBE_UNINIT    assigned on some paths only
        INT / STRING / ARRAY / REF
                        assigned on all paths, type known
        VALUE           assigned on all paths, type unknown/merged

Checks and their rule ids (severities in :data:`VERIFIER_RULES`):

======================  =====================================================
``empty-method``        method has no instructions
``duplicate-label``     two LABEL markers share a name
``stale-label-cache``   ``label_map()`` cache disagrees with the instruction
                        list (a structural edit skipped ``invalidate()``)
``reg-out-of-range``    an operand register >= ``method.registers``
``dangling-label``      a branch/switch target has no LABEL
``switch-bad-table``    switch payload is not a non-empty ``{key: label}``
``read-uninit``         read of a register no path ever assigns
``maybe-uninit``        read of a register only some paths assign
``type-mismatch``       operand definitely has a type the opcode rejects
``unreachable-code``    real instructions no path reaches
``fall-off-end``        execution can run past the last instruction
======================  =====================================================

Errors found here are exactly the bugs that would surface at user
devices as crashes (or as detectable anomalies for an adversary), which
is why :meth:`repro.core.bombdroid.BombDroid.protect` can gate on them
in strict mode.

The pass is deliberately *shape-agnostic*: it verifies dataflow and
structure, not invoke spellings, so the mesh planner's morphed bomb
prologues (operand swaps, split compares, decoy compares, per-app alias
symbols -- :mod:`repro.core.mesh`) verify exactly like the classic
Listing-3 shape.  Only genuinely broken surgery fails the gate.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.dex.instructions import Instr
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import (
    BINOPS,
    CONDITIONAL_BRANCHES,
    LIT_BINOPS,
    Op,
    UNCONDITIONAL_EXITS,
)
from repro.lint.diagnostics import Diagnostic, Severity

#: Rule catalog: id -> (default severity, one-line description).
VERIFIER_RULES: Dict[str, Tuple[Severity, str]] = {
    "empty-method": (Severity.ERROR, "method has no instructions"),
    "duplicate-label": (Severity.ERROR, "two labels share one name"),
    "stale-label-cache": (
        Severity.ERROR,
        "label_map() cache is stale: a structural edit skipped invalidate()",
    ),
    "reg-out-of-range": (Severity.ERROR, "operand register outside the register file"),
    "dangling-label": (Severity.ERROR, "branch or switch target label does not exist"),
    "switch-bad-table": (Severity.ERROR, "switch table is not a non-empty {key: label} dict"),
    "read-uninit": (Severity.ERROR, "read of a register no path assigns"),
    "maybe-uninit": (Severity.WARNING, "read of a register only some paths assign"),
    "type-mismatch": (Severity.ERROR, "operand type is definitely wrong for the opcode"),
    "unreachable-code": (Severity.WARNING, "instructions no path reaches"),
    "fall-off-end": (Severity.WARNING, "execution can run past the last instruction"),
}


class RegType(enum.Enum):
    """Abstract value of one register at one pc."""

    UNINIT = "uninit"
    MAYBE_UNINIT = "maybe_uninit"
    INT = "int"
    STRING = "string"
    ARRAY = "array"
    REF = "ref"
    VALUE = "value"   # initialized, type unknown or merged

    @property
    def initialized(self) -> bool:
        return self not in (RegType.UNINIT, RegType.MAYBE_UNINIT)


RegState = Tuple[RegType, ...]

#: Opcodes whose destination is always an int.
_INT_RESULTS = frozenset(BINOPS | LIT_BINOPS | {Op.NEG, Op.NOT, Op.ARRAY_LEN})

#: Opcodes whose destination holds a value of statically unknown type.
_VALUE_RESULTS = frozenset({Op.AGET, Op.IGET, Op.SGET, Op.INVOKE})

#: (op -> register fields that must hold ints at runtime).
_INT_OPERANDS: Dict[Op, Tuple[str, ...]] = {}
for _op in BINOPS - {Op.CMP}:
    _INT_OPERANDS[_op] = ("a", "b")
for _op in LIT_BINOPS:
    _INT_OPERANDS[_op] = ("a",)
_INT_OPERANDS[Op.NEG] = ("a",)
_INT_OPERANDS[Op.NOT] = ("a",)
_INT_OPERANDS[Op.NEW_ARRAY] = ("a",)
_INT_OPERANDS[Op.AGET] = ("b",)
_INT_OPERANDS[Op.APUT] = ("b",)

#: (op -> register fields that must hold arrays at runtime).
_ARRAY_OPERANDS: Dict[Op, Tuple[str, ...]] = {
    Op.AGET: ("a",),
    Op.APUT: ("dst",),
    Op.ARRAY_LEN: ("a",),
}

#: Definitely-typed states that can never satisfy an int operand.
_NEVER_INT = frozenset({RegType.STRING, RegType.ARRAY, RegType.REF})

#: Definitely-typed states that can never satisfy an array operand.
_NEVER_ARRAY = frozenset({RegType.INT, RegType.STRING, RegType.REF})


def _const_type(value: object) -> RegType:
    if isinstance(value, bool) or isinstance(value, int):
        return RegType.INT
    if isinstance(value, str):
        return RegType.STRING
    return RegType.REF  # bytes blobs and null references


def _join(a: RegType, b: RegType) -> RegType:
    if a is b:
        return a
    if not a.initialized or not b.initialized:
        return RegType.MAYBE_UNINIT
    return RegType.VALUE


def _join_states(a: RegState, b: RegState) -> RegState:
    return tuple(_join(x, y) for x, y in zip(a, b))


class _MethodVerifier:
    """One verification run over one method."""

    def __init__(self, method: DexMethod) -> None:
        self.method = method
        self.diagnostics: List[Diagnostic] = []

    # -- plumbing ----------------------------------------------------------

    def emit(self, rule: str, message: str, pc: Optional[int] = None,
             end: Optional[int] = None) -> None:
        severity, _ = VERIFIER_RULES[rule]
        span = None
        if pc is not None:
            span = (pc, (end if end is not None else pc + 1))
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                method=self.method.qualified_name,
                span=span,
            )
        )

    def _has_errors(self) -> bool:
        return any(diag.is_error for diag in self.diagnostics)

    # -- structural pass ----------------------------------------------------

    def _scan_labels(self) -> Dict[str, int]:
        """Fresh label scan (independent of the method's cache)."""
        labels: Dict[str, int] = {}
        for pc, instr in enumerate(self.method.instructions):
            if instr.op is Op.LABEL:
                if instr.value in labels:
                    self.emit(
                        "duplicate-label",
                        f"label {instr.value!r} already defined at pc "
                        f"{labels[instr.value]}",
                        pc,
                    )
                else:
                    labels[instr.value] = pc
        return labels

    def _check_structure(self) -> Dict[str, int]:
        method = self.method
        labels = self._scan_labels()

        cached = method.label_cache()
        if cached is not None and cached != labels:
            self.emit(
                "stale-label-cache",
                "cached label map disagrees with the instruction list "
                "(a structural edit did not call invalidate())",
            )

        for pc, instr in enumerate(method.instructions):
            for reg in (instr.dst, instr.a, instr.b, *instr.args):
                if reg is not None and not 0 <= reg < method.registers:
                    self.emit(
                        "reg-out-of-range",
                        f"register r{reg} outside the register file "
                        f"(method has {method.registers})",
                        pc,
                    )
            if instr.target is not None and instr.target not in labels:
                self.emit("dangling-label", f"undefined target {instr.target!r}", pc)
            if instr.op is Op.SWITCH:
                table = instr.value
                if not isinstance(table, dict) or not table:
                    self.emit("switch-bad-table", "switch payload must be a non-empty dict", pc)
                    continue
                for key, label in table.items():
                    if not isinstance(key, (int, str)):
                        self.emit("switch-bad-table", f"switch key {key!r} is not int or str", pc)
                    if not isinstance(label, str):
                        self.emit(
                            "switch-bad-table", f"switch target {label!r} is not a label name", pc
                        )
                    elif label not in labels:
                        self.emit("dangling-label", f"undefined switch target {label!r}", pc)
        return labels

    # -- dataflow pass ------------------------------------------------------

    def _successors(self, pc: int, labels: Dict[str, int]) -> Tuple[int, ...]:
        instructions = self.method.instructions
        instr = instructions[pc]
        op = instr.op
        out: List[int] = []
        if op is Op.GOTO:
            out.append(labels[instr.target])
        elif op in CONDITIONAL_BRANCHES:
            out.append(labels[instr.target])
            if pc + 1 < len(instructions):
                out.append(pc + 1)
        elif op is Op.SWITCH:
            out.extend(labels[t] for t in instr.value.values())
            if pc + 1 < len(instructions):
                out.append(pc + 1)
        elif op in (Op.RETURN, Op.RETURN_VOID, Op.THROW):
            pass
        else:
            if pc + 1 < len(instructions):
                out.append(pc + 1)
        return tuple(dict.fromkeys(out))

    def _transfer(self, state: RegState, instr: Instr) -> RegState:
        op = instr.op
        if instr.dst is None or op in (Op.APUT,):
            return state
        regs = list(state)
        if op is Op.CONST:
            regs[instr.dst] = _const_type(instr.value)
        elif op is Op.MOVE:
            source = state[instr.a] if instr.a is not None else RegType.VALUE
            regs[instr.dst] = source if source.initialized else RegType.VALUE
        elif op in _INT_RESULTS:
            regs[instr.dst] = RegType.INT
        elif op is Op.NEW_ARRAY:
            regs[instr.dst] = RegType.ARRAY
        elif op is Op.NEW_INSTANCE:
            regs[instr.dst] = RegType.REF
        elif op in _VALUE_RESULTS:
            regs[instr.dst] = RegType.VALUE
        else:
            regs[instr.dst] = RegType.VALUE
        return tuple(regs)

    def _run_dataflow(self, labels: Dict[str, int]) -> None:
        method = self.method
        instructions = method.instructions
        count = len(instructions)
        entry: RegState = tuple(
            RegType.VALUE if reg < method.params else RegType.UNINIT
            for reg in range(method.registers)
        )
        states: List[Optional[RegState]] = [None] * count
        states[0] = entry
        work = deque([0])
        falls_off_end = False
        while work:
            pc = work.popleft()
            state = states[pc]
            assert state is not None
            instr = instructions[pc]
            after = state if instr.op is Op.LABEL else self._transfer(state, instr)
            successors = self._successors(pc, labels)
            # Every op except the explicit exits and GOTO has an implicit
            # fall-through edge; at the last pc that edge runs off the
            # end even when the op also has branch targets (a trailing
            # IF_* or SWITCH still falls through on the no-match path).
            if pc + 1 >= count and instr.op not in (
                Op.GOTO, Op.RETURN, Op.RETURN_VOID, Op.THROW
            ):
                falls_off_end = True
            for successor in successors:
                merged = (
                    after
                    if states[successor] is None
                    else _join_states(states[successor], after)
                )
                if merged != states[successor]:
                    states[successor] = merged
                    work.append(successor)

        self._report_reads(states)
        self._report_unreachable(states)
        if falls_off_end:
            self.emit(
                "fall-off-end",
                "control can run past the last instruction "
                "(implicit return_void is almost always a weaving bug)",
                count - 1,
            )

    def _report_reads(self, states: List[Optional[RegState]]) -> None:
        instructions = self.method.instructions
        for pc, instr in enumerate(instructions):
            state = states[pc]
            if state is None or instr.op is Op.LABEL:
                continue
            for reg in instr.reads():
                if state[reg] is RegType.UNINIT:
                    self.emit("read-uninit", f"r{reg} is never assigned before this read", pc)
                elif state[reg] is RegType.MAYBE_UNINIT:
                    self.emit(
                        "maybe-uninit",
                        f"r{reg} is unassigned on some paths to this read",
                        pc,
                    )
            for field in _INT_OPERANDS.get(instr.op, ()):
                reg = getattr(instr, field)
                if reg is not None and state[reg] in _NEVER_INT:
                    self.emit(
                        "type-mismatch",
                        f"{instr.op.value} needs an int in r{reg}, "
                        f"found {state[reg].value}",
                        pc,
                    )
            for field in _ARRAY_OPERANDS.get(instr.op, ()):
                reg = getattr(instr, field)
                if reg is not None and state[reg] in _NEVER_ARRAY:
                    self.emit(
                        "type-mismatch",
                        f"{instr.op.value} needs an array in r{reg}, "
                        f"found {state[reg].value}",
                        pc,
                    )

    def _report_unreachable(self, states: List[Optional[RegState]]) -> None:
        instructions = self.method.instructions
        span_start: Optional[int] = None
        for pc in range(len(instructions) + 1):
            dead = (
                pc < len(instructions)
                and states[pc] is None
                and instructions[pc].op not in (Op.LABEL, Op.NOP)
            )
            if dead and span_start is None:
                span_start = pc
            elif not dead and span_start is not None:
                self.emit(
                    "unreachable-code",
                    f"{pc - span_start} instruction(s) unreachable from entry",
                    span_start,
                    end=pc,
                )
                span_start = None

    # -- entry point ---------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        if not self.method.instructions:
            self.emit("empty-method", "method has no instructions")
            return self.diagnostics
        labels = self._check_structure()
        # Dataflow needs resolvable targets and in-range registers; bail
        # once structure is broken rather than masking the root cause.
        if not self._has_errors():
            self._run_dataflow(labels)
        return self.diagnostics


def verify_method(method: DexMethod) -> List[Diagnostic]:
    """All verifier diagnostics for one method."""
    return _MethodVerifier(method).run()


def verify_dex(dex: DexFile) -> List[Diagnostic]:
    """All verifier diagnostics for every method of ``dex``."""
    out: List[Diagnostic] = []
    for method in dex.iter_methods():
        out.extend(verify_method(method))
    return out
