"""Dominator analysis (iterative dataflow formulation).

Needed by natural-loop detection: an edge ``t -> h`` is a back edge iff
``h`` dominates ``t``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.cfg import ControlFlowGraph


def dominators(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Map block index -> set of block indices dominating it.

    Unreachable blocks get ``{themselves}`` (they dominate nothing and
    participate in no loops we care about).
    """
    reachable = cfg.reachable()
    all_reachable = set(reachable)
    dom: Dict[int, Set[int]] = {}
    for block in cfg.blocks:
        if block.index not in reachable:
            dom[block.index] = {block.index}
        elif block.index == 0:
            dom[block.index] = {0}
        else:
            dom[block.index] = set(all_reachable)

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.index == 0 or block.index not in reachable:
                continue
            predecessor_doms = [
                dom[p] for p in block.predecessors if p in reachable
            ]
            if predecessor_doms:
                new = set.intersection(*predecessor_doms)
            else:
                new = set()
            new.add(block.index)
            if new != dom[block.index]:
                dom[block.index] = new
                changed = True
    return dom


def immediate_dominators(cfg: ControlFlowGraph) -> Dict[int, Optional[int]]:
    """Map block index -> its immediate dominator (None for entry and
    unreachable blocks)."""
    dom = dominators(cfg)
    idom: Dict[int, Optional[int]] = {}
    for block in cfg.blocks:
        index = block.index
        strict = dom[index] - {index}
        if not strict:
            idom[index] = None
            continue
        # The idom is the strict dominator dominated by all other strict
        # dominators.
        candidate = None
        for d in strict:
            if all(d in dom_other or d == other for other in strict for dom_other in [dom[other]]):
                if strict <= dom[d] | {d}:
                    candidate = d
                    break
        if candidate is None:
            # Fallback: pick the strict dominator with the largest
            # dominator set (deepest in the tree).
            candidate = max(strict, key=lambda d: len(dom[d]))
        idom[index] = candidate
    return idom
