"""Dominator and postdominator analysis (iterative dataflow formulation).

Forward dominators are needed by natural-loop detection: an edge
``t -> h`` is a back edge iff ``h`` dominates ``t``.

Postdominators run the same dataflow over the reversed CFG and feed
:func:`control_dependence` -- the Ferrante--Ottenstein--Warren
construction the static trigger detector (:mod:`repro.analysis.triggers`)
uses to delimit the code region guarded by a suspicious branch.

Multiple exits are handled without a virtual exit node: every exit
block (a block with no successors) is initialized to ``{itself}`` and
the intersection over successors converges to the set of blocks that
appear on *every* path to *any* exit, which is exactly the
virtual-exit semantics restricted to real blocks.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.cfg import ControlFlowGraph


def dominators(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Map block index -> set of block indices dominating it.

    Unreachable blocks get ``{themselves}`` (they dominate nothing and
    participate in no loops we care about).
    """
    reachable = cfg.reachable()
    all_reachable = set(reachable)
    dom: Dict[int, Set[int]] = {}
    for block in cfg.blocks:
        if block.index not in reachable:
            dom[block.index] = {block.index}
        elif block.index == 0:
            dom[block.index] = {0}
        else:
            dom[block.index] = set(all_reachable)

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.index == 0 or block.index not in reachable:
                continue
            predecessor_doms = [
                dom[p] for p in block.predecessors if p in reachable
            ]
            if predecessor_doms:
                new = set.intersection(*predecessor_doms)
            else:
                new = set()
            new.add(block.index)
            if new != dom[block.index]:
                dom[block.index] = new
                changed = True
    return dom


def immediate_dominators(cfg: ControlFlowGraph) -> Dict[int, Optional[int]]:
    """Map block index -> its immediate dominator (None for entry and
    unreachable blocks)."""
    dom = dominators(cfg)
    idom: Dict[int, Optional[int]] = {}
    for block in cfg.blocks:
        index = block.index
        strict = dom[index] - {index}
        if not strict:
            idom[index] = None
            continue
        # The idom is the strict dominator dominated by all other strict
        # dominators.
        candidate = None
        for d in strict:
            if all(d in dom_other or d == other for other in strict for dom_other in [dom[other]]):
                if strict <= dom[d] | {d}:
                    candidate = d
                    break
        if candidate is None:
            # Fallback: pick the strict dominator with the largest
            # dominator set (deepest in the tree).
            candidate = max(strict, key=lambda d: len(dom[d]))
        idom[index] = candidate
    return idom


def postdominators(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Map block index -> set of block indices postdominating it.

    A block ``p`` postdominates ``n`` when every path from ``n`` to any
    exit passes through ``p`` (every block postdominates itself).
    Unreachable blocks get ``{themselves}``, mirroring
    :func:`dominators`.  Blocks from which no exit is reachable (a
    statically infinite loop) keep the full set -- every block vacuously
    postdominates them, which keeps control dependence conservative.
    """
    reachable = cfg.reachable()
    exits = {
        block.index for block in cfg.blocks
        if not block.successors and block.index in reachable
    }
    all_reachable = set(reachable)
    pdom: Dict[int, Set[int]] = {}
    for block in cfg.blocks:
        if block.index not in reachable:
            pdom[block.index] = {block.index}
        elif block.index in exits:
            pdom[block.index] = {block.index}
        else:
            pdom[block.index] = set(all_reachable)

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.index in exits or block.index not in reachable:
                continue
            successor_pdoms = [
                pdom[s] for s in block.successors if s in reachable
            ]
            if successor_pdoms:
                new = set.intersection(*successor_pdoms)
            else:
                new = set()
            new.add(block.index)
            if new != pdom[block.index]:
                pdom[block.index] = new
                changed = True
    return pdom


def immediate_postdominators(cfg: ControlFlowGraph) -> Dict[int, Optional[int]]:
    """Map block index -> its immediate postdominator (None for exits
    and unreachable blocks)."""
    pdom = postdominators(cfg)
    ipdom: Dict[int, Optional[int]] = {}
    for block in cfg.blocks:
        index = block.index
        strict = pdom[index] - {index}
        if not strict:
            ipdom[index] = None
            continue
        # The ipdom is the strict postdominator postdominated by every
        # other strict postdominator (the closest one).
        candidate = None
        for p in strict:
            if strict <= pdom[p] | {p}:
                candidate = p
                break
        if candidate is None:
            candidate = max(strict, key=lambda p: len(pdom[p]))
        ipdom[index] = candidate
    return ipdom


def control_dependence(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Map block index -> the branch blocks it is control-dependent on.

    Ferrante--Ottenstein--Warren: for each CFG edge ``u -> v`` where
    ``v`` does not postdominate ``u``, every block on the postdominator
    tree path from ``v`` up to (but excluding) ``ipdom(u)`` is
    control-dependent on ``u``.  A loop header ends up control-dependent
    on itself, which is the conventional (and useful) reading.
    """
    pdom = postdominators(cfg)
    ipdom = immediate_postdominators(cfg)
    cdep: Dict[int, Set[int]] = {block.index: set() for block in cfg.blocks}
    for u, v in cfg.edges():
        if v != u and v in pdom[u]:
            continue  # v postdominates u: the edge decides nothing
        runner: Optional[int] = v
        stop = ipdom[u]
        seen: Set[int] = set()
        while runner is not None and runner != stop and runner not in seen:
            seen.add(runner)
            cdep[runner].add(u)
            runner = ipdom[runner]
    return cdep


def controlled_blocks(cfg: ControlFlowGraph, branch_block: int) -> Set[int]:
    """Block indices control-dependent on ``branch_block`` (its region)."""
    cdep = control_dependence(cfg)
    return {index for index, controllers in cdep.items() if branch_block in controllers}
