"""Natural-loop detection.

Section 7.2: "As a heuristic optimization, we avoid inserting bombs into
loops in a procedure" -- a bomb's hash-and-compare prologue inside a hot
loop would wreck the overhead budget.  :func:`instructions_in_loops`
returns the set of pcs the instrumenter must avoid.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dominators import dominators
from repro.dex.model import DexMethod


def natural_loops(cfg: ControlFlowGraph) -> List[Tuple[int, Set[int]]]:
    """All natural loops as ``(header_block, body_block_set)`` pairs.

    A back edge is ``tail -> header`` where header dominates tail; the
    loop body is the set of blocks that reach tail without going through
    header, plus header itself.
    """
    dom = dominators(cfg)
    reachable = cfg.reachable()
    loops: List[Tuple[int, Set[int]]] = []
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        for successor in block.successors:
            if successor in dom[block.index]:
                # back edge block.index -> successor
                header = successor
                body: Set[int] = {header}
                work = [block.index]
                while work:
                    node = work.pop()
                    if node in body:
                        continue
                    body.add(node)
                    work.extend(
                        p for p in cfg.blocks[node].predecessors if p in reachable
                    )
                loops.append((header, body))
    return loops


def instructions_in_loops(method: DexMethod) -> Set[int]:
    """Pcs of every instruction inside any natural loop of ``method``."""
    cfg = build_cfg(method)
    in_loop: Set[int] = set()
    for _, body in natural_loops(cfg):
        for block_index in body:
            in_loop.update(cfg.blocks[block_index].pcs())
    return in_loop
