"""Control-flow graph construction.

Blocks are maximal straight-line instruction ranges over the method's
instruction list (label markers included in the range but not counted
as leaders on their own -- a label *is* a leader exactly because
something may jump to it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dex.model import DexMethod
from repro.dex.opcodes import CONDITIONAL_BRANCHES, Op, TERMINATORS, UNCONDITIONAL_EXITS
from repro.errors import AnalysisError


@dataclass
class BasicBlock:
    """Instructions ``[start, end)`` of the method's instruction list."""

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def pcs(self) -> range:
        return range(self.start, self.end)

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


@dataclass
class ControlFlowGraph:
    """Blocks plus entry index; block 0 is always the method entry."""

    method: DexMethod
    blocks: List[BasicBlock]

    def block_of(self, pc: int) -> BasicBlock:
        for block in self.blocks:
            if pc in block:
                return block
        raise AnalysisError(f"pc {pc} not covered by any block")

    def edges(self) -> List[Tuple[int, int]]:
        out = []
        for block in self.blocks:
            out.extend((block.index, successor) for successor in block.successors)
        return out

    def reachable(self) -> Set[int]:
        """Block indices reachable from entry."""
        seen: Set[int] = set()
        work = [0] if self.blocks else []
        while work:
            index = work.pop()
            if index in seen:
                continue
            seen.add(index)
            work.extend(self.blocks[index].successors)
        return seen


def _branch_targets(method: DexMethod, pc: int) -> List[int]:
    """Instruction indices this terminator may transfer control to."""
    instr = method.instructions[pc]
    targets: List[int] = []
    if instr.target is not None:
        targets.append(method.resolve(instr.target))
    if instr.op is Op.SWITCH:
        targets.extend(method.resolve(label) for label in instr.value.values())
    return targets


def build_cfg(method: DexMethod) -> ControlFlowGraph:
    """Build the CFG of ``method``."""
    instructions = method.instructions
    if not instructions:
        raise AnalysisError(f"{method.qualified_name}: empty method")

    # Leaders: entry, every label marker, and every fall-through after a
    # terminator.
    leaders: Set[int] = {0}
    for pc, instr in enumerate(instructions):
        if instr.op is Op.LABEL:
            leaders.add(pc)
        if instr.op in TERMINATORS and pc + 1 < len(instructions):
            leaders.add(pc + 1)

    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    leader_to_block: Dict[int, int] = {}
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) else len(instructions)
        blocks.append(BasicBlock(index=index, start=start, end=end))
        leader_to_block[start] = index

    def block_at(pc: int) -> int:
        # pc is always a leader when used as a branch target (labels are
        # leaders); fall-through pcs are leaders by construction too.
        try:
            return leader_to_block[pc]
        except KeyError:
            raise AnalysisError(f"branch target pc {pc} is not a leader") from None

    for block in blocks:
        # Find the last *real* instruction of the block (trailing labels
        # only happen in empty tail blocks).
        terminator: Optional[int] = None
        for pc in range(block.end - 1, block.start - 1, -1):
            if instructions[pc].op is not Op.LABEL:
                terminator = pc
                break
        if terminator is None:
            # Label-only block: pure fall-through.
            if block.end < len(instructions):
                block.successors.append(block_at(block.end))
            continue
        instr = instructions[terminator]
        if instr.op in UNCONDITIONAL_EXITS:
            if instr.op is Op.GOTO:
                block.successors.append(block_at(method.resolve(instr.target)))
        elif instr.op in CONDITIONAL_BRANCHES:
            block.successors.append(block_at(method.resolve(instr.target)))
            if block.end < len(instructions):
                target = block_at(block.end)
                if target not in block.successors:
                    block.successors.append(target)
        elif instr.op is Op.SWITCH:
            for label in instr.value.values():
                target = block_at(method.resolve(label))
                if target not in block.successors:
                    block.successors.append(target)
            if block.end < len(instructions):
                target = block_at(block.end)
                if target not in block.successors:
                    block.successors.append(target)
        else:
            if block.end < len(instructions):
                block.successors.append(block_at(block.end))

    for block in blocks:
        for successor in block.successors:
            blocks[successor].predecessors.append(block.index)

    return ControlFlowGraph(method=method, blocks=blocks)
