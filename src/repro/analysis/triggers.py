"""Static trigger analysis: the Difuzer/TriggerZoo-style HSO detector.

The strongest *static* adversary the paper's threat model admits: an
interprocedural control-dependence + taint analysis that flags
suspicious triggers guarding hidden sensitive operations (HSOs).  This
is the analysis BombDroid's encrypted triggers must survive -- and the
one that makes short work of the naive Listing-2 bombs.

Pipeline, per :func:`analyze_dex`:

1.  **Control dependence.**  For every method, build the CFG and the
    control-dependence relation (:func:`repro.analysis.dominators.
    control_dependence`): which blocks execute *only because* a given
    branch decided so.

2.  **Predicate recovery.**  A forward abstract-interpretation walk
    (modeled on the verifier's register dataflow) tracks, per register,
    a set of *origin tags* -- where the value came from (environment
    reads, the clock, randomness, hashes, detection probes, plain
    constants) -- plus the constant it was compared against, when one
    is visible.  Each conditional branch is then classified into a
    :class:`PredicateKind`.

3.  **Interprocedural taint + sink summaries.**  A fixpoint over the
    call graph computes (a) the origin tags a method's return value can
    carry (so ``if (helper())`` classifies by what ``helper`` reads)
    and (b) whether calling a method can transitively reach a sensitive
    sink, with the sink's weight attenuated by call depth.

4.  **Scoring.**  A guarded region containing a sensitive sink becomes
    an :class:`HsoFinding`, scored Difuzer-style from sink sensitivity,
    predicate suspiciousness, guard-constant entropy and dead-branch
    asymmetry (a tiny guarded branch hanging off a huge method is the
    classic bomb shape).

Why BombDroid survives step 4: the Listing-3 prologue is *visible* (the
hash compare classifies as :attr:`PredicateKind.HASH_OPAQUE`) but the
guarded region contains only ``bomb.derive``/``bomb.decrypt``/
``bomb.load_run`` -- generic crypto plumbing, not a sensitive sink; the
detection and response code lives inside the encrypted payload where no
static pass can see it.  Deliberately, ``bomb.*`` names are *not*
treated as sinks: in a real deployment that runtime is inlined,
unremarkable crypto code, and keying on the names is the text-search
attack's job, not this analysis's.  Opaque guards are still *counted*
(:attr:`TriggerScan.opaque_guards`) so the resilience matrix can show
the detector saw the triggers yet could not localize a payload.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.dominators import control_dependence
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import (
    BINOPS,
    CONDITIONAL_BRANCHES,
    LIT_BINOPS,
    Op,
    UNCONDITIONAL_EXITS,
)
from repro.errors import AnalysisError

# ---------------------------------------------------------------------------
# Sources, sinks and their weights.
# ---------------------------------------------------------------------------

#: Sensitive sinks a hidden operation would reach, with Difuzer-style
#: sensitivity weights.  ``bomb.*`` is deliberately absent -- see the
#: module docstring.
SINK_WEIGHTS: Dict[str, float] = {
    "android.pm.get_public_key": 5.0,
    "android.pm.get_manifest_digest": 5.0,
    "android.pm.get_method_hash": 5.0,
    "android.net.report": 4.0,
    "android.reflect.call": 3.0,
}

#: Weight of a THROW reachable only under the suspicious predicate (a
#: guarded crash is the paper's canonical repackaging response).
THROW_WEIGHT = 2.0

#: Attenuation per call-graph edge for sinks reached through callees.
DEPTH_ATTENUATION = 0.6

#: Calls whose *result* is a salted hash / digest: taint stops here and
#: becomes opacity (the whole point of the Listing-3 transformation).
HASH_PRODUCERS = frozenset({
    "bomb.hash",
    "bomb.sha1_hex",
    "bomb.derive",
    "java.str.hash_code",
})

#: Calls whose result identifies the installed package (detection probes).
DETECT_PRODUCERS = frozenset({
    "android.pm.get_public_key",
    "android.pm.get_manifest_digest",
    "android.pm.get_method_hash",
})

#: String library calls that propagate their arguments' taint.
_STR_PROPAGATING = frozenset({
    "java.str.equals",
    "java.str.starts_with",
    "java.str.ends_with",
    "java.str.contains",
    "java.str.length",
    "java.str.concat",
    "java.str.substring",
    "java.str.char_at",
    "java.str.index_of",
    "java.str.from_int",
    "java.str.to_int",
    "java.math.abs",
    "java.math.min",
    "java.math.max",
})

#: Calls producing a comparison result whose compared-constant we keep
#: for guard-entropy estimation.
_EQUALITY_CALLS = frozenset({
    "java.str.equals",
    "java.str.starts_with",
    "java.str.ends_with",
    "java.str.contains",
})

_TAG_ENV_TIME = "env.time"
_TAG_ENV_NET = "env.net"
_TAG_ENV_DEVICE = "env.device"
_TAG_RANDOM = "random"
_TAG_HASH = "hash"
_TAG_DETECT = "detect"
_TAG_REFLECT = "reflect"
_TAG_FIELD = "field"

_EMPTY: FrozenSet[str] = frozenset()


def _env_tag(name: object) -> str:
    """Origin tag for one ``android.env.get`` variable name."""
    if isinstance(name, str):
        if name.startswith("time."):
            return _TAG_ENV_TIME
        if name.startswith("net."):
            return _TAG_ENV_NET
    return _TAG_ENV_DEVICE


class PredicateKind(enum.Enum):
    """Classification of one branch predicate, most suspicious first."""

    DETECTION_PROBE = "detection_probe"    # compares a pm.* identity probe
    HASH_OPAQUE = "hash_opaque"            # compares a salted hash / digest
    REFLECTED = "reflected"                # compares a reflection result
    ENV_TIME = "env_time"                  # clock / time-derived operand
    ENV_NET = "env_net"                    # network-state operand
    ENV_DEVICE = "env_device"              # device-identity operand
    RANDOM = "random"                      # rand()-derived operand
    CONST_COMPARISON = "const_comparison"  # plain value vs constant
    FIELD_STATE = "field_state"            # static-field flag test
    OTHER = "other"


#: Suspiciousness multiplier per predicate kind (Difuzer's trigger
#: features, collapsed to one factor).
PREDICATE_FACTORS: Dict[PredicateKind, float] = {
    PredicateKind.DETECTION_PROBE: 3.0,
    PredicateKind.HASH_OPAQUE: 2.5,
    PredicateKind.REFLECTED: 2.2,
    PredicateKind.ENV_TIME: 2.0,
    PredicateKind.ENV_NET: 2.0,
    PredicateKind.ENV_DEVICE: 1.8,
    PredicateKind.RANDOM: 1.5,
    PredicateKind.CONST_COMPARISON: 1.0,
    PredicateKind.FIELD_STATE: 0.8,
    PredicateKind.OTHER: 0.5,
}

#: Tag -> kind, in priority order (first match wins).
_TAG_PRIORITY: Tuple[Tuple[str, PredicateKind], ...] = (
    (_TAG_DETECT, PredicateKind.DETECTION_PROBE),
    (_TAG_HASH, PredicateKind.HASH_OPAQUE),
    (_TAG_REFLECT, PredicateKind.REFLECTED),
    (_TAG_ENV_TIME, PredicateKind.ENV_TIME),
    (_TAG_ENV_NET, PredicateKind.ENV_NET),
    (_TAG_ENV_DEVICE, PredicateKind.ENV_DEVICE),
    (_TAG_RANDOM, PredicateKind.RANDOM),
)

#: Entropy (bits) at which the guard constant counts as fully opaque --
#: a SHA-1 digest rendered as 40 hex characters.
_FULL_ENTROPY_BITS = 160.0


def guard_entropy_bits(value: object) -> float:
    """Crude entropy estimate (bits) of a guard's comparison constant.

    A long hex string (a digest or key fingerprint) is treated at its
    full nibble width; other strings by character diversity; ints by
    bit length.  The estimate only feeds a bounded score factor, so
    crude is fine.
    """
    if value is None:
        return 0.0
    if isinstance(value, bool):
        return 1.0
    if isinstance(value, int):
        return float(max(1, value.bit_length()))
    if isinstance(value, bytes):
        return 8.0 * len(value)
    if isinstance(value, str):
        if len(value) >= 16 and all(c in "0123456789abcdefABCDEF" for c in value):
            return 4.0 * len(value)
        distinct = len(set(value))
        if distinct <= 1:
            return 1.0
        return len(value) * math.log2(distinct)
    return 0.0


# ---------------------------------------------------------------------------
# Abstract values and the per-method dataflow walk.
# ---------------------------------------------------------------------------

#: One register's abstract value: (origin tags, visible constant).
AbsVal = Tuple[FrozenSet[str], object]

_BOTTOM: AbsVal = (_EMPTY, None)


def _join_val(a: AbsVal, b: AbsVal) -> AbsVal:
    const = a[1] if (type(a[1]) is type(b[1]) and a[1] == b[1]) else None
    return (a[0] | b[0], const)


def _join_state(a: Tuple[AbsVal, ...], b: Tuple[AbsVal, ...]) -> Tuple[AbsVal, ...]:
    return tuple(_join_val(x, y) for x, y in zip(a, b))


@dataclass
class MethodSummary:
    """Interprocedural facts about one method, computed to fixpoint."""

    return_tags: FrozenSet[str] = _EMPTY
    #: Best (attenuated) sink weight reachable by calling this method.
    sink_weight: float = 0.0
    #: Representative sink name, ``"via"``-prefixed when indirect.
    sink_name: Optional[str] = None
    sink_depth: int = 0


class _TaintWalker:
    """Forward per-pc abstract interpretation of one method."""

    def __init__(
        self,
        method: DexMethod,
        summaries: Optional[Dict[str, MethodSummary]] = None,
    ) -> None:
        self.method = method
        self.summaries = summaries or {}
        self.states: List[Optional[Tuple[AbsVal, ...]]] = []

    def run(self) -> List[Optional[Tuple[AbsVal, ...]]]:
        method = self.method
        instructions = method.instructions
        if not instructions:
            self.states = []
            return []
        count = len(instructions)
        labels = method.label_map()
        entry = tuple(_BOTTOM for _ in range(method.registers))
        states: List[Optional[Tuple[AbsVal, ...]]] = [None] * count
        states[0] = entry
        work = [0]
        while work:
            pc = work.pop()
            state = states[pc]
            assert state is not None
            instr = instructions[pc]
            after = state if instr.op is Op.LABEL else self._transfer(state, instr)
            for successor in self._successors(pc, labels):
                merged = (
                    after
                    if states[successor] is None
                    else _join_state(states[successor], after)
                )
                if merged != states[successor]:
                    states[successor] = merged
                    work.append(successor)
        self.states = states
        return states

    def _successors(self, pc: int, labels: Dict[str, int]) -> Tuple[int, ...]:
        instructions = self.method.instructions
        instr = instructions[pc]
        op = instr.op
        out: List[int] = []
        if op is Op.GOTO:
            out.append(labels[instr.target])
        elif op in CONDITIONAL_BRANCHES:
            out.append(labels[instr.target])
            if pc + 1 < len(instructions):
                out.append(pc + 1)
        elif op is Op.SWITCH:
            out.extend(labels[t] for t in instr.value.values())
            if pc + 1 < len(instructions):
                out.append(pc + 1)
        elif op in (Op.RETURN, Op.RETURN_VOID, Op.THROW):
            pass
        else:
            if pc + 1 < len(instructions):
                out.append(pc + 1)
        return tuple(dict.fromkeys(out))

    def _invoke_result(self, instr, state: Tuple[AbsVal, ...]) -> AbsVal:
        name = instr.value
        arg_vals = [state[reg] for reg in instr.args]
        arg_tags: FrozenSet[str] = _EMPTY
        for tags, _ in arg_vals:
            arg_tags |= tags
        if not isinstance(name, str):
            return (arg_tags, None)
        if name == "android.env.get":
            env_name = arg_vals[0][1] if arg_vals else None
            return (frozenset({_env_tag(env_name)}), None)
        if name == "android.time.now":
            return (frozenset({_TAG_ENV_TIME}), None)
        if name == "java.rand.next":
            return (frozenset({_TAG_RANDOM}), None)
        if name in HASH_PRODUCERS:
            # Hashing *launders* taint into opacity: whatever went in,
            # only "this is a digest" comes out.
            return (frozenset({_TAG_HASH}), None)
        if name in DETECT_PRODUCERS:
            return (frozenset({_TAG_DETECT}), None)
        if name == "android.reflect.call":
            return (frozenset({_TAG_REFLECT}), None)
        if name in _EQUALITY_CALLS:
            # Keep the compared constant for guard-entropy estimation
            # when exactly one operand is a visible constant.
            consts = [v for _, v in arg_vals if v is not None]
            const = consts[0] if len(consts) == 1 else None
            return (arg_tags, const)
        if name in _STR_PROPAGATING:
            return (arg_tags, None)
        summary = self.summaries.get(name)
        if summary is not None:
            return (summary.return_tags | arg_tags, None)
        return (arg_tags, None)

    def _transfer(self, state: Tuple[AbsVal, ...], instr) -> Tuple[AbsVal, ...]:
        op = instr.op
        if instr.dst is None or op is Op.APUT:
            return state
        regs = list(state)
        if op is Op.CONST:
            regs[instr.dst] = (_EMPTY, instr.value)
        elif op is Op.MOVE:
            regs[instr.dst] = state[instr.a] if instr.a is not None else _BOTTOM
        elif op in BINOPS:
            a = state[instr.a] if instr.a is not None else _BOTTOM
            b = state[instr.b] if instr.b is not None else _BOTTOM
            regs[instr.dst] = (a[0] | b[0], None)
        elif op in LIT_BINOPS or op in (Op.NEG, Op.NOT, Op.ARRAY_LEN):
            a = state[instr.a] if instr.a is not None else _BOTTOM
            regs[instr.dst] = (a[0], None)
        elif op is Op.SGET:
            regs[instr.dst] = (frozenset({_TAG_FIELD}), None)
        elif op in (Op.IGET, Op.AGET):
            a = state[instr.a] if instr.a is not None else _BOTTOM
            regs[instr.dst] = (a[0], None)
        elif op is Op.INVOKE:
            regs[instr.dst] = self._invoke_result(instr, state)
        elif op in (Op.NEW_ARRAY, Op.NEW_INSTANCE):
            regs[instr.dst] = _BOTTOM
        else:
            regs[instr.dst] = _BOTTOM
        return tuple(regs)

    def return_tags(self) -> FrozenSet[str]:
        """Union of origin tags over every reachable RETURN value."""
        tags: FrozenSet[str] = _EMPTY
        for pc, instr in enumerate(self.method.instructions):
            if instr.op is not Op.RETURN:
                continue
            state = self.states[pc] if pc < len(self.states) else None
            if state is not None and instr.a is not None:
                tags |= state[instr.a][0]
        return tags


# ---------------------------------------------------------------------------
# Findings.
# ---------------------------------------------------------------------------


@dataclass
class HsoFinding:
    """One suspicious guarded region: a candidate hidden sensitive op."""

    method: str                      # qualified method name
    branch_pc: int                   # pc of the guarding branch
    kind: PredicateKind
    score: float
    sinks: Tuple[str, ...]           # sink names in the guarded region
    guarded_side: str                # "target" or "fallthrough"
    features: Dict[str, object] = field(default_factory=dict)

    @property
    def site(self) -> str:
        return f"{self.method}@{self.branch_pc}"

    def describe(self) -> str:
        sinks = ", ".join(self.sinks)
        return (
            f"{self.site}: {self.kind.value} guard ({self.guarded_side} side) "
            f"-> [{sinks}]  score={self.score:.2f}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "branch_pc": self.branch_pc,
            "kind": self.kind.value,
            "score": round(self.score, 3),
            "sinks": list(self.sinks),
            "guarded_side": self.guarded_side,
            "features": self.features,
        }

    def to_diagnostic(self):
        """Render as a lint Diagnostic (for SARIF / report plumbing)."""
        from repro.lint.diagnostics import Diagnostic, Severity

        return Diagnostic(
            rule="hso-finding",
            severity=Severity.WARNING,
            method=self.method,
            span=(self.branch_pc, self.branch_pc + 1),
            message=self.describe().split(": ", 1)[1],
        )


@dataclass
class TriggerScan:
    """Whole-program result of :func:`analyze_dex`."""

    findings: List[HsoFinding] = field(default_factory=list)
    #: Hash-opaque guards seen but not localizable (no visible sink).
    opaque_guards: List[str] = field(default_factory=list)
    methods_scanned: int = 0
    branches_classified: int = 0
    #: Methods the walker gave up on (malformed; verifier's problem).
    methods_skipped: int = 0

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.kind.value] = out.get(finding.kind.value, 0) + 1
        return out


# ---------------------------------------------------------------------------
# Whole-program analysis.
# ---------------------------------------------------------------------------

#: Fixpoint passes over the call graph for return-taint summaries; call
#: chains deeper than this stop propagating tags (never seen in corpus).
_SUMMARY_PASSES = 3


def _direct_sinks(method: DexMethod) -> List[Tuple[str, float]]:
    out: List[Tuple[str, float]] = []
    for instr in method.instructions:
        if instr.op is Op.THROW:
            out.append(("throw", THROW_WEIGHT))
        elif instr.op is Op.INVOKE and instr.value in SINK_WEIGHTS:
            out.append((instr.value, SINK_WEIGHTS[instr.value]))
    return out


def compute_summaries(dex: DexFile) -> Dict[str, MethodSummary]:
    """Interprocedural fixpoint: return taint + reachable-sink weights."""
    methods = {m.qualified_name: m for m in dex.iter_methods()}
    summaries = {name: MethodSummary() for name in methods}

    callees: Dict[str, Set[str]] = {name: set() for name in methods}
    for name, method in methods.items():
        for instr in method.instructions:
            if instr.op is Op.INVOKE and instr.value in methods:
                callees[name].add(instr.value)

    # Sink reachability (monotone, attenuated by depth).
    for name, method in methods.items():
        direct = _direct_sinks(method)
        if direct:
            sink_name, weight = max(direct, key=lambda item: item[1])
            summaries[name].sink_weight = weight
            summaries[name].sink_name = sink_name
    changed = True
    while changed:
        changed = False
        for name in methods:
            summary = summaries[name]
            for callee in callees[name]:
                callee_summary = summaries[callee]
                propagated = callee_summary.sink_weight * DEPTH_ATTENUATION
                if propagated > summary.sink_weight:
                    summary.sink_weight = propagated
                    summary.sink_name = callee_summary.sink_name
                    summary.sink_depth = callee_summary.sink_depth + 1
                    changed = True

    # Return taint (bounded passes; tag sets only grow).
    for _ in range(_SUMMARY_PASSES):
        changed = False
        for name, method in methods.items():
            try:
                walker = _TaintWalker(method, summaries)
                walker.run()
                tags = walker.return_tags()
            except (AnalysisError, KeyError, IndexError):
                continue
            if tags - summaries[name].return_tags:
                summaries[name].return_tags |= tags
                changed = True
        if not changed:
            break
    return summaries


def _classify(
    tags: FrozenSet[str], const: object
) -> PredicateKind:
    for tag, kind in _TAG_PRIORITY:
        if tag in tags:
            return kind
    if const is not None:
        return PredicateKind.CONST_COMPARISON
    if _TAG_FIELD in tags:
        return PredicateKind.FIELD_STATE
    return PredicateKind.OTHER


def _predicate_of(
    instr, state: Tuple[AbsVal, ...]
) -> Tuple[PredicateKind, object]:
    """Classify one conditional branch from the register state before it."""
    operands = [reg for reg in (instr.a, instr.b) if reg is not None]
    tags: FrozenSet[str] = _EMPTY
    consts: List[object] = []
    for reg in operands:
        reg_tags, reg_const = state[reg]
        tags |= reg_tags
        if reg_const is not None:
            consts.append(reg_const)
    const = consts[0] if len(consts) == 1 else None
    return _classify(tags, const), const


def _reachable_from(cfg: ControlFlowGraph, start: int) -> Set[int]:
    seen: Set[int] = set()
    work = [start]
    while work:
        index = work.pop()
        if index in seen:
            continue
        seen.add(index)
        work.extend(cfg.blocks[index].successors)
    return seen


def _region_sinks(
    blocks: Iterable[BasicBlock],
    method: DexMethod,
    summaries: Dict[str, MethodSummary],
) -> List[Tuple[str, float]]:
    """Sinks inside ``blocks``, direct or through callee summaries."""
    out: List[Tuple[str, float]] = []
    for block in blocks:
        for pc in block.pcs():
            instr = method.instructions[pc]
            if instr.op is Op.THROW:
                out.append(("throw", THROW_WEIGHT))
            elif instr.op is Op.INVOKE and isinstance(instr.value, str):
                if instr.value in SINK_WEIGHTS:
                    out.append((instr.value, SINK_WEIGHTS[instr.value]))
                else:
                    summary = summaries.get(instr.value)
                    if summary is not None and summary.sink_weight > 0:
                        out.append((
                            f"via {instr.value}: {summary.sink_name}",
                            summary.sink_weight * DEPTH_ATTENUATION,
                        ))
    return out


def analyze_method(
    method: DexMethod,
    summaries: Optional[Dict[str, MethodSummary]] = None,
) -> Tuple[List[HsoFinding], List[str], int]:
    """Findings, opaque-guard sites and classified-branch count for one
    method."""
    summaries = summaries or {}
    findings: List[HsoFinding] = []
    opaque: List[str] = []
    cfg = build_cfg(method)
    cdep = control_dependence(cfg)
    walker = _TaintWalker(method, summaries)
    states = walker.run()
    labels = method.label_map()
    instructions = method.instructions
    reachable = cfg.reachable()
    classified = 0

    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        # The branch, if any, is the block's last real instruction.
        branch_pc: Optional[int] = None
        for pc in range(block.end - 1, block.start - 1, -1):
            if instructions[pc].op is not Op.LABEL:
                branch_pc = pc
                break
        if branch_pc is None:
            continue
        instr = instructions[branch_pc]
        if instr.op not in CONDITIONAL_BRANCHES:
            continue
        state = states[branch_pc]
        if state is None:
            continue
        kind, const = _predicate_of(instr, state)
        classified += 1
        entropy = guard_entropy_bits(const)
        entropy_norm = min(1.0, entropy / _FULL_ENTROPY_BITS)

        region = {
            index for index, controllers in cdep.items()
            if block.index in controllers
        }
        target_block = cfg.block_of(labels[instr.target]).index
        fall_block = (
            cfg.block_of(block.end).index if block.end < len(instructions) else None
        )
        sides: List[Tuple[str, Optional[int]]] = [
            ("target", target_block),
            ("fallthrough", fall_block),
        ]
        side_regions: Dict[str, Set[int]] = {}
        for side, start in sides:
            if start is None:
                side_regions[side] = set()
            else:
                side_regions[side] = region & _reachable_from(cfg, start)

        emitted = False
        for side, start in sides:
            side_region = side_regions[side]
            if not side_region:
                continue
            sinks = _region_sinks(
                (cfg.blocks[i] for i in sorted(side_region)), method, summaries
            )
            if not sinks:
                continue
            other = side_regions["target" if side == "fallthrough" else "fallthrough"]
            other_size = len(other) if other else len(reachable) - len(side_region)
            asymmetry = 1.0
            if other_size > len(side_region):
                asymmetry += 0.5 * (1.0 - len(side_region) / other_size)
            sink_weight = max(weight for _, weight in sinks)
            score = (
                sink_weight
                * PREDICATE_FACTORS[kind]
                * (1.0 + entropy_norm)
                * asymmetry
            )
            findings.append(
                HsoFinding(
                    method=method.qualified_name,
                    branch_pc=branch_pc,
                    kind=kind,
                    score=score,
                    sinks=tuple(name for name, _ in sinks),
                    guarded_side=side,
                    features={
                        "entropy_bits": round(entropy, 1),
                        "guarded_blocks": len(side_region),
                        "asymmetry": round(asymmetry, 3),
                        "sink_weight": sink_weight,
                    },
                )
            )
            emitted = True
        if kind is PredicateKind.HASH_OPAQUE and not emitted:
            opaque.append(f"{method.qualified_name}@{branch_pc}")
    return findings, opaque, classified


def analyze_dex(dex: DexFile, min_score: float = 2.0) -> TriggerScan:
    """Run the whole-program HSO detector over ``dex``.

    Findings below ``min_score`` are dropped; survivors are ranked by
    descending score.
    """
    summaries = compute_summaries(dex)
    scan = TriggerScan()
    for method in dex.iter_methods():
        scan.methods_scanned += 1
        try:
            findings, opaque, classified = analyze_method(method, summaries)
        except (AnalysisError, KeyError, IndexError):
            scan.methods_skipped += 1
            continue
        scan.branches_classified += classified
        scan.opaque_guards.extend(opaque)
        scan.findings.extend(f for f in findings if f.score >= min_score)
    scan.findings.sort(key=lambda f: (-f.score, f.method, f.branch_pc))
    return scan
