"""Field-value entropy profiling for artificial QCs.

Section 7.2: "we collect the possible values that each accessible field
takes through profiling; fields that have the largest numbers of unique
values are considered to have higher entropies and are used to
construct artificial QCs".  Figure 3 visualizes exactly this: six
AndroFish variables sampled once per minute for an hour.

The profiler snapshots static-field values from a running
:class:`repro.vm.Runtime`; the caller decides the sampling cadence
(e.g. once per simulated minute of fuzzing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class FieldHistory:
    """Sampled values of one static field over the profiling run."""

    name: str
    samples: List[Tuple[float, object]] = field(default_factory=list)

    @property
    def values(self) -> List[object]:
        return [value for _, value in self.samples]

    @property
    def unique_count(self) -> int:
        seen = set()
        for value in self.values:
            try:
                seen.add(value)
            except TypeError:
                seen.add(repr(value))
        return len(seen)

    def unique_values(self) -> List[object]:
        out = []
        seen = set()
        for value in self.values:
            key = value if isinstance(value, (int, str, bool, type(None))) else repr(value)
            if key not in seen:
                seen.add(key)
                out.append(value)
        return out


class FieldValueProfiler:
    """Collects static-field histories from a runtime under test."""

    def __init__(self) -> None:
        self._histories: Dict[str, FieldHistory] = {}

    def sample(self, runtime) -> None:
        """Record the current value of every static field."""
        clock = runtime.device.clock
        for name, value in runtime.statics.items():
            history = self._histories.get(name)
            if history is None:
                history = self._histories[name] = FieldHistory(name=name)
            history.samples.append((clock, value))

    @property
    def histories(self) -> Dict[str, FieldHistory]:
        return dict(self._histories)

    def history_of(self, name: str) -> Optional[FieldHistory]:
        return self._histories.get(name)

    def rank_by_entropy(self, value_types=(int, str)) -> List[FieldHistory]:
        """Histories sorted by unique-value count, highest first.

        Only fields whose sampled values are all of the given types (and
        not None-only) qualify -- artificial QCs need hashable operands
        with usable domains.  Booleans are excluded by default: they
        yield only weak conditions.
        """
        eligible = []
        for history in self._histories.values():
            values = [v for v in history.values if v is not None]
            if not values:
                continue
            if all(
                isinstance(v, value_types) and not isinstance(v, bool) for v in values
            ):
                eligible.append(history)
        eligible.sort(key=lambda h: (-h.unique_count, h.name))
        return eligible
