"""Backward program slicing (the HARVESTER attack primitive).

Section 2.1, "Circumventing trigger conditions": "an attacker may
perform backward program slicing starting from that line of code, and
then execute the extracted slices to uncover the payload behavior".

The slicer computes, for a criterion pc inside one method, the set of
pcs whose instructions may influence it: data dependencies through
registers and static fields, plus control dependencies on the branches
that guard the criterion.  It is intraprocedural, which matches how the
attack is exercised here -- the whole bomb prologue (hash, compare,
decrypt) is local to the instrumented method.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import build_cfg
from repro.dex.model import DexMethod
from repro.dex.opcodes import CONDITIONAL_BRANCHES, Op


def backward_slice(method: DexMethod, criterion_pc: int) -> Set[int]:
    """Pcs of every instruction the criterion transitively depends on.

    The criterion itself is included.  Conservative: any SGET pulls in
    every SPUT of the same field; control dependence pulls in every
    conditional branch that can bypass the dependent instruction.
    """
    instructions = method.instructions
    if not 0 <= criterion_pc < len(instructions):
        raise IndexError(f"criterion pc {criterion_pc} out of range")

    cfg = build_cfg(method)
    sliced: Set[int] = {criterion_pc}
    static_interest: Set[str] = set()
    processed_statics: Set[str] = set()

    def register_pass(seed: List[Tuple[int, frozenset]]) -> None:
        """Propagate register interest backwards from the seed points."""
        work = list(seed)
        seen: Set[Tuple[int, frozenset]] = set()
        while work:
            pc, interest = work.pop()
            if (pc, interest) in seen:
                continue
            seen.add((pc, interest))

            block = cfg.block_of(pc)
            frontier: List[int] = []
            if pc > block.start:
                frontier.append(pc - 1)
            else:
                for predecessor in block.predecessors:
                    pred_block = cfg.blocks[predecessor]
                    if pred_block.end > pred_block.start:
                        frontier.append(pred_block.end - 1)

            for prev_pc in frontier:
                prev = instructions[prev_pc]
                new_interest = set(interest)
                written = set(prev.writes())
                if written & new_interest:
                    sliced.add(prev_pc)
                    if prev.op is Op.SGET:
                        static_interest.add(prev.value)
                    new_interest -= written
                    new_interest |= set(prev.reads())
                work.append((prev_pc, frozenset(new_interest)))

    register_pass([(criterion_pc, frozenset(instructions[criterion_pc].reads()))])

    # Static fields: any SPUT to a field the slice reads joins the slice
    # (with its own data dependencies), to a fixpoint.
    while static_interest - processed_statics:
        field_name = (static_interest - processed_statics).pop()
        processed_statics.add(field_name)
        for pc, instr in enumerate(instructions):
            if instr.op is Op.SPUT and instr.value == field_name:
                sliced.add(pc)
                register_pass([(pc, frozenset(instr.reads()))])

    # Control dependence: include every conditional branch whose outcome
    # decides whether a sliced instruction runs.
    sliced |= _guarding_branches(method, cfg, sliced)
    return sliced


def _guarding_branches(method: DexMethod, cfg, sliced: Set[int]) -> Set[int]:
    """Branches that can route control around any sliced instruction."""
    guards: Set[int] = set()
    sliced_blocks = {cfg.block_of(pc).index for pc in sliced}
    for block in cfg.blocks:
        for pc in block.pcs():
            instr = method.instructions[pc]
            if instr.op in CONDITIONAL_BRANCHES or instr.op is Op.SWITCH:
                # The branch guards the slice when its successors reach
                # *different sets* of sliced blocks (a common join block
                # being reachable from all sides does not make the
                # branch irrelevant to the conditional part).
                reach_sets = [
                    frozenset(_reached_sliced(cfg, successor, sliced_blocks))
                    for successor in block.successors
                ]
                if len(set(reach_sets)) > 1:
                    guards.add(pc)
    return guards


def _reached_sliced(cfg, start: int, targets: Set[int]) -> Set[int]:
    seen: Set[int] = set()
    reached: Set[int] = set()
    work = [start]
    while work:
        index = work.pop()
        if index in seen:
            continue
        seen.add(index)
        if index in targets:
            reached.add(index)
        work.extend(cfg.blocks[index].successors)
    return reached


def extract_slice_method(method: DexMethod, criterion_pc: int) -> DexMethod:
    """Materialize the slice as a runnable method (HARVESTER style).

    Non-sliced instructions become NOPs so labels and branch structure
    survive; the attacker then force-executes the result.
    """
    from repro.dex.instructions import Instr

    keep = backward_slice(method, criterion_pc)
    body = []
    for pc, instr in enumerate(method.instructions):
        if pc in keep or instr.op is Op.LABEL or instr.op in (
            Op.RETURN,
            Op.RETURN_VOID,
            Op.GOTO,
        ):
            body.append(instr)
        else:
            body.append(Instr(Op.NOP))
    return DexMethod(
        name=f"{method.name}$slice{criterion_pc}",
        class_name=method.class_name,
        params=method.params,
        registers=method.registers,
        instructions=body,
    )
