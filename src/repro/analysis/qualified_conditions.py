"""Qualified-condition (QC) discovery.

Section 3.3: a condition qualifies as a trigger when it checks equality
of an expression against a statically determinable constant -- ``==``
on ints/booleans, string ``equals``/``startsWith``/``endsWith``, and
switch cases (the paper scans for IFEQ, IFNE, IF_ICMPEQ, IF_ICMPNE and
TABLESWITCH).

Strength (Section 8.3.1) follows the operand type: **string** constants
give strong obfuscation (unbounded domain), **int** medium (2^32),
**boolean** weak (2 values).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.defs import constant_in_block, register_used_once
from repro.dex.model import DexMethod
from repro.dex.opcodes import Op

_STRING_EQUALITY_CALLS = {
    "java.str.equals": "str_equals",
    "java.str.starts_with": "str_starts_with",
    "java.str.ends_with": "str_ends_with",
}

_BOOL_PRODUCING_CALLS = set(_STRING_EQUALITY_CALLS) | {"java.str.contains"}


class Strength(enum.Enum):
    """Brute-force resistance class of the trigger constant's domain."""

    WEAK = "weak"        # boolean: |dom| = 2
    MEDIUM = "medium"    # int: |dom| = 2^32
    STRONG = "strong"    # string: unbounded domain

    @classmethod
    def of_value(cls, value) -> "Strength":
        if isinstance(value, bool):
            return cls.WEAK
        if isinstance(value, int):
            return cls.MEDIUM
        if isinstance(value, str):
            return cls.STRONG
        raise TypeError(f"no strength class for {type(value).__name__}")


class QCKind(enum.Enum):
    """Syntactic shape of the qualified condition."""

    INT_EQ = "int_eq"                  # if_eq / if_ne against a constant
    STR_EQUALS = "str_equals"          # String.equals + zero test
    STR_STARTS_WITH = "str_starts_with"
    STR_ENDS_WITH = "str_ends_with"
    BOOL_TEST = "bool_test"            # if_eqz / if_nez on a boolean
    SWITCH_CASE = "switch_case"        # one case of a switch table


@dataclass
class QualifiedCondition:
    """One discovered QC.

    ``branch_pc``            pc of the conditional branch (or SWITCH)
    ``var_reg``              register holding the tested expression X
    ``const_value``          the constant c
    ``kind``                 syntactic shape
    ``equal_jumps``          True if equality transfers to ``branch target``;
                             False if equality falls through
    ``const_def_pc``         pc of the CONST defining c, when the constant
                             lives in a register (None for switch keys and
                             literal bool tests)
    ``const_reg``            that register (None likewise)
    ``const_removable``      the CONST can be deleted along with the branch
    ``compare_pc``           pc of the string-compare INVOKE for STR_* kinds
    ``case_key``             the matched key for SWITCH_CASE
    """

    method: DexMethod
    branch_pc: int
    var_reg: int
    const_value: object
    kind: QCKind
    equal_jumps: bool
    const_def_pc: Optional[int] = None
    const_reg: Optional[int] = None
    const_removable: bool = False
    compare_pc: Optional[int] = None
    case_key: object = None

    @property
    def strength(self) -> Strength:
        return Strength.of_value(self.const_value)

    @property
    def site(self) -> str:
        return f"{self.method.qualified_name}@{self.branch_pc}"

    def describe(self) -> str:
        return (
            f"{self.site}: {self.kind.value} X==" f"{self.const_value!r} ({self.strength.value})"
        )


def _bool_operand_is_sound(method: DexMethod, pc: int, reg: int) -> bool:
    """True when ``reg`` at ``pc`` is definitely a *boolean* value.

    An ``if_eqz`` on an int would break under the Hash(X)==Hash(False)
    transformation (0 is falsy but encodes differently than False), so
    we only accept registers defined by boolean constants or
    boolean-returning library calls within the block.
    """
    instructions = method.instructions
    cursor = pc - 1
    while cursor >= 0:
        instr = instructions[cursor]
        if instr.op is Op.LABEL:
            return False
        if reg in instr.writes():
            if instr.op is Op.CONST:
                return isinstance(instr.value, bool)
            if instr.op is Op.INVOKE:
                return instr.value in _BOOL_PRODUCING_CALLS
            if instr.op is Op.MOVE:
                reg = instr.a
                cursor -= 1
                continue
            return False
        cursor -= 1
    return False


def find_qualified_conditions(method: DexMethod) -> List[QualifiedCondition]:
    """All QCs of ``method``, in pc order."""
    results: List[QualifiedCondition] = []
    consumed_branch_pcs = set()
    instructions = method.instructions

    # Pass 1: string-equality calls feeding a zero test.
    for pc, instr in enumerate(instructions):
        if instr.op is not Op.INVOKE or instr.value not in _STRING_EQUALITY_CALLS:
            continue
        if instr.dst is None or len(instr.args) != 2:
            continue
        # The branch must be the next real instruction using the result.
        branch_pc = _next_real(instructions, pc + 1)
        if branch_pc is None:
            continue
        branch = instructions[branch_pc]
        if branch.op not in (Op.IF_EQZ, Op.IF_NEZ) or branch.a != instr.dst:
            continue
        # One operand must be a constant string -- and a *different*
        # register than the subject: equals(r, r) is degenerate (the
        # "variable" is the constant itself) and not transformable.
        if instr.args[0] == instr.args[1]:
            continue
        var_reg = const_info = None
        for subject, other in ((instr.args[0], instr.args[1]), (instr.args[1], instr.args[0])):
            info = constant_in_block(method, pc, other)
            if info is not None and isinstance(info[1], str):
                var_reg, const_info = subject, info
                break
        if const_info is None:
            continue
        const_def_pc, const_value = const_info
        kind = QCKind[_STRING_EQUALITY_CALLS[instr.value].upper()]
        consumed_branch_pcs.add(branch_pc)
        # For starts/ends-with the constant is a *fragment*, not the full
        # trigger operand; key derivation from X would not reproduce it.
        # Only full equality is transformable, matching the paper's
        # equality-checking requirement; prefix/suffix QCs are still
        # reported (they are usable for bogus bombs).
        results.append(
            QualifiedCondition(
                method=method,
                branch_pc=branch_pc,
                var_reg=var_reg,
                const_value=const_value,
                kind=kind,
                equal_jumps=branch.op is Op.IF_NEZ,
                const_def_pc=const_def_pc,
                const_reg=instructions[const_def_pc].dst,
                const_removable=register_used_once(
                    method, instructions[const_def_pc].dst, pc
                ),
                compare_pc=pc,
            )
        )

    # Pass 2: if_eq / if_ne with one constant operand.
    for pc, instr in enumerate(instructions):
        if instr.op not in (Op.IF_EQ, Op.IF_NE):
            continue
        if instr.a == instr.b:
            continue  # degenerate: comparing a register with itself
        var_reg = const_info = None
        for subject, other in ((instr.a, instr.b), (instr.b, instr.a)):
            info = constant_in_block(method, pc, other)
            if info is not None and not isinstance(info[1], bool) and isinstance(info[1], (int, str)):
                var_reg, const_info = subject, info
                break
        if const_info is None:
            continue
        # Skip when both operands are constants (degenerate, nothing to
        # trigger on).
        if constant_in_block(method, pc, var_reg) is not None:
            continue
        const_def_pc, const_value = const_info
        const_reg = instructions[const_def_pc].dst
        results.append(
            QualifiedCondition(
                method=method,
                branch_pc=pc,
                var_reg=var_reg,
                const_value=const_value,
                kind=QCKind.INT_EQ,
                equal_jumps=instr.op is Op.IF_EQ,
                const_def_pc=const_def_pc,
                const_reg=const_reg,
                const_removable=register_used_once(method, const_reg, pc),
            )
        )

    # Pass 3: boolean zero tests.
    for pc, instr in enumerate(instructions):
        if instr.op not in (Op.IF_EQZ, Op.IF_NEZ) or pc in consumed_branch_pcs:
            continue
        if not _bool_operand_is_sound(method, pc, instr.a):
            continue
        results.append(
            QualifiedCondition(
                method=method,
                branch_pc=pc,
                var_reg=instr.a,
                # if_eqz jumps when X is False, i.e. equality with False
                # transfers to the target.
                const_value=(instr.op is Op.IF_NEZ),
                kind=QCKind.BOOL_TEST,
                equal_jumps=True,
            )
        )

    # Pass 4: switch cases.
    for pc, instr in enumerate(instructions):
        if instr.op is not Op.SWITCH:
            continue
        for key in instr.value:
            if isinstance(key, bool) or not isinstance(key, (int, str)):
                continue
            results.append(
                QualifiedCondition(
                    method=method,
                    branch_pc=pc,
                    var_reg=instr.a,
                    const_value=key,
                    kind=QCKind.SWITCH_CASE,
                    equal_jumps=True,
                    case_key=key,
                )
            )

    results.sort(key=lambda qc: (qc.branch_pc, str(qc.case_key)))
    return results


def _next_real(instructions, pc: int) -> Optional[int]:
    """Index of the next non-label instruction at or after ``pc``."""
    while pc < len(instructions):
        if instructions[pc].op is not Op.LABEL:
            return pc
        pc += 1
    return None
