"""Static and dynamic analysis over the repro ISA.

Used by two parties:

* **BombDroid** (Step 2 of Fig. 1) -- CFG construction, loop detection
  (bombs are not inserted inside loops), qualified-condition discovery,
  hot-method profiling (Traceview role) and field-entropy profiling for
  artificial QCs;
* **the attacker** -- backward program slicing (HARVESTER role) and
  def-use analysis feed the attack suite.
"""

from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.dominators import (
    control_dependence,
    controlled_blocks,
    dominators,
    immediate_dominators,
    immediate_postdominators,
    postdominators,
)
from repro.analysis.loops import natural_loops, instructions_in_loops
from repro.analysis.defs import constant_in_block, definition_sites
from repro.analysis.qualified_conditions import (
    QualifiedCondition,
    Strength,
    find_qualified_conditions,
)
from repro.analysis.regions import body_region, region_is_weavable
from repro.analysis.entropy import FieldValueProfiler, FieldHistory
from repro.analysis.profiler import HotMethodProfile, profile_hot_methods
from repro.analysis.slicing import backward_slice
from repro.analysis.verifier import (
    RegType,
    VERIFIER_RULES,
    verify_dex,
    verify_method,
)
from repro.analysis.triggers import (
    HsoFinding,
    PredicateKind,
    TriggerScan,
    analyze_dex,
    analyze_method,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "control_dependence",
    "controlled_blocks",
    "dominators",
    "immediate_dominators",
    "immediate_postdominators",
    "postdominators",
    "natural_loops",
    "instructions_in_loops",
    "constant_in_block",
    "definition_sites",
    "QualifiedCondition",
    "Strength",
    "find_qualified_conditions",
    "body_region",
    "region_is_weavable",
    "FieldValueProfiler",
    "FieldHistory",
    "HotMethodProfile",
    "profile_hot_methods",
    "backward_slice",
    "RegType",
    "VERIFIER_RULES",
    "verify_dex",
    "verify_method",
    "HsoFinding",
    "PredicateKind",
    "TriggerScan",
    "analyze_dex",
    "analyze_method",
]
