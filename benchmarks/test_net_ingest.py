"""Networked ingestion bench: latency, throughput, failover convergence.

Three properties gate the TCP reporting service:

* p99 ingest latency (from the ``reporting.net.ingest_seconds``
  histogram the service itself records) stays under a loose ceiling;
* pipelined frames/sec over one loopback connection beats a
  conservative floor (RSA signature verification dominates);
* a fleet run over TCP with a mid-run leader kill + follower
  promotion reaches the same verdict as the uninterrupted in-process
  baseline on the same seed.

Results land in ``BENCH_net_ingest.json`` in the working directory so
CI can upload them as an artifact.  Scale via ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro.crypto import RSAKeyPair
from repro.reporting import (
    AggregatedVerdict,
    DetectionReport,
    FleetConfig,
    OutcomeModel,
    ReportServer,
    SubmitStatus,
    TakedownPolicy,
    encode_report,
    run_fleet,
    sign_report,
)
from repro.reporting.net import ServiceHandle, TcpTransport

from conftest import SCALE, print_table

BENCH_OUT = "BENCH_net_ingest.json"
FRAMES = max(400, int(2000 * SCALE))

#: Conservative floors/ceilings -- a laptop does far better; these only
#: catch order-of-magnitude regressions without flaking CI.
MIN_FRAMES_PER_SECOND = 50
MAX_P99_SECONDS = 1.0

ORIGINAL = "aa" * 20
PIRATE = "bb" * 20

FLEET_MODEL = OutcomeModel(
    report_rate=1.0, observed_key_hex=PIRATE, bad_experience_rate=0.35
)


def _signed_frames(count):
    attest = RSAKeyPair.generate(seed=31)
    frames = []
    for i in range(count):
        signed = sign_report(
            DetectionReport(
                app_name="Game",
                bomb_id=f"b{i % 16:03d}",
                device_id=f"dev-{i:06d}",
                observed_key_hex=PIRATE,
                timestamp=10.0 + i * 0.001,
                nonce=10_000 + i,
            ),
            attest,
        )
        frames.append(encode_report(signed))
    return frames


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    frames = _signed_frames(FRAMES)

    server = ReportServer(shards=8, policy=TakedownPolicy(distinct_devices=3))
    server.register_app("Game", ORIGINAL)
    handle = ServiceHandle.start(server, shard_queue_depth=4096)
    transport = TcpTransport(handle.address)
    started = time.perf_counter()
    statuses = transport.send_many(frames)
    ingest_s = time.perf_counter() - started
    transport.close()
    accepted = sum(1 for s in statuses if s is SubmitStatus.ACCEPTED)
    hist = handle.call(
        lambda s: s.metrics.snapshot()["reporting.net.ingest_seconds"]
    )
    handle.stop()

    # Failover convergence: in-process baseline vs TCP with a leader
    # kill + follower promotion at batch 3, same seed.
    base = FleetConfig(
        devices=4000, batch_size=500, shards=4, seed=9,
        target_reports=120, attestation_pool=2,
    )
    baseline = run_fleet("Game", ORIGINAL, FLEET_MODEL, base)
    state = tmp_path_factory.mktemp("net-ingest-fleet")
    failover = run_fleet(
        "Game", ORIGINAL, FLEET_MODEL,
        dataclasses.replace(
            base, transport="tcp",
            data_dir=str(state / "leader"),
            replica_dir=str(state / "replica"),
            failover_after_batch=3, snapshot_every=16,
        ),
    )
    verdict_matches = (
        failover.verdict is baseline.verdict
        and failover.offender_key == baseline.offender_key
    )

    payload = {
        "frames": FRAMES,
        "frames_accepted": accepted,
        "ingest_seconds": round(ingest_s, 4),
        "frames_per_second": round(FRAMES / ingest_s, 1) if ingest_s else None,
        "ingest_p50_seconds": hist["p50"],
        "ingest_p99_seconds": hist["p99"],
        "ingest_mean_seconds": hist["mean"],
        "failover_recoveries": failover.recoveries,
        "failover_verdict": failover.verdict.name.lower(),
        "baseline_verdict": baseline.verdict.name.lower(),
        "failover_verdict_matches_baseline": verdict_matches,
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle_:
        json.dump(payload, handle_, indent=2)

    print_table(
        "net ingest",
        ["metric", "value"],
        [
            ["frames", FRAMES],
            ["frames/s", f"{payload['frames_per_second']:.0f}"],
            ["p50 latency", f"{hist['p50'] * 1e3:.3f} ms"],
            ["p99 latency", f"{hist['p99'] * 1e3:.3f} ms"],
            ["failover verdict", payload["failover_verdict"]],
            ["matches baseline", verdict_matches],
        ],
    )
    return {
        "statuses": statuses,
        "accepted": accepted,
        "hist": hist,
        "ingest_s": ingest_s,
        "baseline": baseline,
        "failover": failover,
    }


def test_every_frame_answered(measurements):
    assert len(measurements["statuses"]) == FRAMES
    assert measurements["accepted"] == FRAMES
    assert measurements["hist"]["count"] == FRAMES


def test_throughput_floor(measurements):
    rate = FRAMES / measurements["ingest_s"]
    assert rate >= MIN_FRAMES_PER_SECOND, (
        f"{rate:,.0f} frames/s below the {MIN_FRAMES_PER_SECOND}/s floor"
    )


def test_p99_latency_ceiling(measurements):
    p99 = measurements["hist"]["p99"]
    assert 0 < p99 <= MAX_P99_SECONDS, (
        f"p99 ingest latency {p99:.4f}s outside (0, {MAX_P99_SECONDS}]s"
    )


def test_failover_converges_to_baseline(measurements):
    baseline, failover = measurements["baseline"], measurements["failover"]
    assert failover.recoveries == 1
    assert failover.verdict is baseline.verdict is AggregatedVerdict.TAKEDOWN
    assert failover.offender_key == baseline.offender_key == PIRATE


def test_bench_artifact_written(measurements):
    with open(BENCH_OUT, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["frames"] == FRAMES
    assert payload["ingest_p99_seconds"] > 0
    assert payload["frames_per_second"] > 0
    assert payload["failover_verdict_matches_baseline"] is True
