"""Static trigger-detector throughput and the resilience separation.

The acceptance bar for the HSO detector (ISSUE 6):

* >= 90% of naive Listing-2 bombs localized (right method AND the
  guarding branch or inserted block);
* 0 BombDroid-encrypted bombs localized -- the opaque guards are
  visible but nothing sensitive hangs under them;
* the clean-corpus false-positive rate is reported and bounded;
* scan throughput (methods/second) is recorded and guarded so the
  analysis stays usable as a strict-mode gate.

Results land in ``BENCH_detector.json`` in the working directory so CI
can upload them as an artifact.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.analysis.triggers import analyze_dex
from repro.core.naive import NaiveProtector
from repro.crypto import RSAKeyPair

from conftest import print_table

BENCH_OUT = "BENCH_detector.json"

#: Clean-corpus findings per scanned method must stay under this.
FP_RATE_BOUND = 0.05

#: Throughput floor: the scan must stay cheap enough for strict mode.
MIN_METHODS_PER_SECOND = 25.0


def _timed_scans(apks):
    """(scans, elapsed_seconds, methods_scanned) over a list of dexes."""
    scans = []
    started = time.perf_counter()
    for apk in apks:
        scans.append(analyze_dex(apk.dex()))
    elapsed = time.perf_counter() - started
    methods = sum(scan.methods_scanned for scan in scans)
    return scans, elapsed, methods


@pytest.fixture(scope="module")
def naive_corpus(bundles):
    """name -> (naive_apk, NaiveReport) over the shared named apps."""
    key = RSAKeyPair.generate(seed=77)
    return {
        name: NaiveProtector(seed=1).protect(bundle.apk, key)
        for name, bundle in bundles.items()
    }


@pytest.fixture(scope="module")
def measurements(bundles, naive_corpus, protections):
    clean_scans, clean_s, clean_methods = _timed_scans(
        [bundle.apk for bundle in bundles.values()]
    )
    naive_scans, naive_s, naive_methods = _timed_scans(
        [apk for apk, _ in naive_corpus.values()]
    )
    protected_scans, protected_s, protected_methods = _timed_scans(
        [protected for protected, _ in protections.values()]
    )

    placements = [
        placement
        for _, report in naive_corpus.values()
        for placement in report.placements
    ]
    findings = [f for scan in naive_scans for f in scan.findings]
    localized = [
        placement
        for placement in placements
        if any(placement.covers(f.method, f.branch_pc) for f in findings)
    ]

    clean_findings = sum(len(scan.findings) for scan in clean_scans)
    protected_findings = sum(len(scan.findings) for scan in protected_scans)
    opaque_guards = sum(len(scan.opaque_guards) for scan in protected_scans)

    total_methods = clean_methods + naive_methods + protected_methods
    total_seconds = clean_s + naive_s + protected_s
    methods_per_second = total_methods / total_seconds if total_seconds else 0.0

    payload = {
        "apps": len(bundles),
        "naive_bombs": len(placements),
        "naive_localized": len(localized),
        "naive_localization_rate": (
            round(len(localized) / len(placements), 4) if placements else None
        ),
        "encrypted_bombs_localized": protected_findings,
        "encrypted_opaque_guards_seen": opaque_guards,
        "clean_findings": clean_findings,
        "clean_methods_scanned": clean_methods,
        "clean_fp_rate": (
            round(clean_findings / clean_methods, 4) if clean_methods else None
        ),
        "fp_rate_bound": FP_RATE_BOUND,
        "methods_scanned_total": total_methods,
        "scan_seconds_total": round(total_seconds, 4),
        "methods_per_second": round(methods_per_second, 2),
        "min_methods_per_second": MIN_METHODS_PER_SECOND,
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print_table(
        "static-detector scan",
        ["corpus", "apps", "methods", "seconds", "findings"],
        [
            ["clean", len(bundles), clean_methods, f"{clean_s:.2f}", clean_findings],
            ["naive", len(naive_corpus), naive_methods, f"{naive_s:.2f}",
             len(findings)],
            ["bombdroid", len(protections), protected_methods,
             f"{protected_s:.2f}", protected_findings],
        ],
    )
    payload["_scans"] = {
        "clean": clean_scans, "naive": naive_scans, "protected": protected_scans
    }
    payload["_placements"] = placements
    payload["_findings"] = findings
    return payload


def test_naive_localization_rate_at_least_90pct(measurements):
    assert measurements["naive_bombs"] > 0
    rate = measurements["naive_localization_rate"]
    assert rate >= 0.9, (
        f"localized {measurements['naive_localized']}/"
        f"{measurements['naive_bombs']} naive bombs ({rate:.0%})"
    )


def test_zero_encrypted_bombs_localized(measurements):
    assert measurements["encrypted_bombs_localized"] == 0
    # Resilience, not blindness: the detector saw the triggers.
    assert measurements["encrypted_opaque_guards_seen"] > 0


def test_clean_fp_rate_bounded(measurements):
    assert measurements["clean_methods_scanned"] > 0
    assert measurements["clean_fp_rate"] <= FP_RATE_BOUND, (
        f"clean corpus FP rate {measurements['clean_fp_rate']:.2%} above "
        f"the {FP_RATE_BOUND:.0%} bound"
    )


def test_scan_throughput_floor(measurements):
    assert measurements["methods_per_second"] >= MIN_METHODS_PER_SECOND, (
        f"{measurements['methods_per_second']:.1f} methods/s below the "
        f"{MIN_METHODS_PER_SECOND} floor -- too slow for a strict-mode gate"
    )


def test_bench_artifact_written(measurements):
    with open(BENCH_OUT, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["apps"] == measurements["apps"]
    assert payload["encrypted_bombs_localized"] == 0
    assert payload["naive_localization_rate"] >= 0.9
