"""Table 4: outer trigger conditions satisfied by blackbox fuzzers.

Paper: Monkey, PUMA, AndroidHooker and Dynodroid each fuzz the
protected apps for one hour on the attacker's machines; 19.4-38.5% of
outer trigger conditions get satisfied, with Dynodroid consistently
best and Monkey worst.
"""

from conftest import FUZZ_HOUR, print_table

from repro.attacks import FuzzingAttack

FUZZERS = ("monkey", "puma", "androidhooker", "dynodroid")


def test_table4(benchmark, protections, named_app_names):
    rows = []
    rates = {fuzzer: [] for fuzzer in FUZZERS}

    def run():
        for index, name in enumerate(named_app_names):
            protected, report = protections[name]
            bomb_ids = [bomb.bomb_id for bomb in report.real_bombs()]
            attack = FuzzingAttack(duration_seconds=FUZZ_HOUR, seed=100 + index)
            outcomes = attack.run_all(protected, bomb_ids, fuzzers=FUZZERS)
            row = [name]
            for fuzzer in FUZZERS:
                rate = outcomes[fuzzer].outer_satisfied_rate
                rates[fuzzer].append(rate)
                row.append(f"{rate:.1%}")
            rows.append(tuple(row))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 4 (% outer conditions satisfied in {FUZZ_HOUR:.0f}s of fuzzing; "
        "paper: 19-39%, Dynodroid best)",
        ["app", *FUZZERS],
        rows,
    )

    means = {fuzzer: sum(values) / len(values) for fuzzer, values in rates.items()}
    print("mean:", {fuzzer: f"{mean:.1%}" for fuzzer, mean in means.items()})

    # Shape assertions from the paper's table:
    #  - only a minority of outer conditions fall to any fuzzer;
    #  - Dynodroid is the strongest, Monkey the weakest.
    for fuzzer, mean in means.items():
        assert 0.02 <= mean <= 0.7, f"{fuzzer} rate {mean:.1%} out of plausible band"
    assert means["dynodroid"] >= means["monkey"]
    assert means["dynodroid"] == max(means.values())
