"""Batch protection throughput: parallel speedup + cache reuse.

The acceptance bar for the batch pipeline:

* a 4-worker batch over a 16-app corpus beats serial by >= 2x
  (asserted only on machines with >= 4 cores -- single-core CI
  containers still *measure* and record the ratio honestly);
* parallel outputs are byte-identical to serial, app for app
  (always asserted -- determinism does not depend on core count);
* a warm-cache rerun costs < 25% of the cold run.

Results land in ``BENCH_protect_batch.json`` in the working
directory so CI can upload them as an artifact.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.apk.io import apk_to_bytes
from repro.core import BombDroidConfig
from repro.corpus import build_app
from repro.crypto import RSAKeyPair
from repro.pipeline import BatchJob, BatchOptions, protect_batch, resolve_workers

from conftest import SCALE, print_table

CORPUS_SIZE = max(4, int(16 * SCALE))
PROFILING_EVENTS = max(100, int(300 * SCALE))
PARALLEL_WORKERS = 4
BENCH_OUT = "BENCH_protect_batch.json"

#: The speedup assert needs real cores; a 1-CPU container can only
#: measure (and record) the ratio, not meaningfully gate on it.
ENOUGH_CORES = (os.cpu_count() or 1) >= PARALLEL_WORKERS


@pytest.fixture(scope="module")
def corpus():
    key = RSAKeyPair.generate(seed=77)
    jobs = []
    for index in range(CORPUS_SIZE):
        bundle = build_app(
            f"Batch{index:02d}", category="Game", seed=index, scale=0.3
        )
        jobs.append(BatchJob.from_apk(f"app{index:02d}", bundle.apk, key))
    return jobs


@pytest.fixture(scope="module")
def config():
    return BombDroidConfig(seed=9, profiling_events=PROFILING_EVENTS)


@pytest.fixture(scope="module")
def measurements(corpus, config, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("artifact-cache"))

    def timed(options):
        started = time.perf_counter()
        result = protect_batch(corpus, config, options)
        return time.perf_counter() - started, result

    serial_s, serial = timed(BatchOptions(workers=1))
    parallel_s, parallel = timed(BatchOptions(workers=PARALLEL_WORKERS))
    auto_s, auto = timed(BatchOptions(workers="auto"))
    cold_s, cold = timed(BatchOptions(workers=1, cache_dir=cache_dir))
    warm_s, warm = timed(BatchOptions(workers=1, cache_dir=cache_dir))

    payload = {
        "corpus_apps": len(corpus),
        "profiling_events": PROFILING_EVENTS,
        "cpu_count": os.cpu_count(),
        "workers": PARALLEL_WORKERS,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "speedup_asserted": ENOUGH_CORES,
        "auto_seconds": round(auto_s, 4),
        "auto_workers_resolved": auto.workers,
        "auto_serial_fallback": auto.serial_fallback,
        "serial_apps_per_second": round(serial.apps_per_second, 3),
        "parallel_apps_per_second": round(parallel.apps_per_second, 3),
        "cold_cache_seconds": round(cold_s, 4),
        "warm_cache_seconds": round(warm_s, 4),
        "warm_over_cold": round(warm_s / cold_s, 4) if cold_s else None,
        "warm_cache_hits": warm.cache_hits,
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print_table(
        "protect-batch throughput",
        ["mode", "seconds", "apps/s"],
        [
            ["serial (1 worker)", f"{serial_s:.2f}", f"{serial.apps_per_second:.2f}"],
            [f"parallel ({PARALLEL_WORKERS} workers)", f"{parallel_s:.2f}",
             f"{parallel.apps_per_second:.2f}"],
            [f"auto ({auto.workers} worker(s){', serial fallback' if auto.serial_fallback else ''})",
             f"{auto_s:.2f}", f"{auto.apps_per_second:.2f}"],
            ["cold cache", f"{cold_s:.2f}", f"{cold.apps_per_second:.2f}"],
            ["warm cache", f"{warm_s:.2f}", f"{warm.apps_per_second:.2f}"],
        ],
    )
    return {
        "serial": serial, "parallel": parallel, "auto": auto,
        "cold": cold, "warm": warm,
        "serial_s": serial_s, "parallel_s": parallel_s,
        "cold_s": cold_s, "warm_s": warm_s,
    }


def test_all_apps_protected(measurements):
    for run in ("serial", "parallel", "auto", "cold", "warm"):
        result = measurements[run]
        assert result.ok_count == CORPUS_SIZE, (
            f"{run}: {result.failed_count} failure(s): "
            + "; ".join(o.error for o in result.outcomes if not o.ok)
        )


def test_parallel_output_byte_identical_to_serial(measurements):
    serial, parallel = measurements["serial"], measurements["parallel"]
    for serial_out, parallel_out in zip(serial.outcomes, parallel.outcomes):
        assert serial_out.name == parallel_out.name
        assert apk_to_bytes(serial_out.result.apk) == apk_to_bytes(
            parallel_out.result.apk
        ), f"{serial_out.name}: parallel output diverged from serial"


@pytest.mark.skipif(
    not ENOUGH_CORES,
    reason=f"needs >= {PARALLEL_WORKERS} cores for a meaningful speedup",
)
def test_parallel_speedup_at_least_2x(measurements):
    speedup = measurements["serial_s"] / measurements["parallel_s"]
    assert speedup >= 2.0, (
        f"{PARALLEL_WORKERS}-worker speedup {speedup:.2f}x below the 2x bar"
    )


def test_warm_cache_under_quarter_of_cold(measurements):
    assert measurements["warm"].cache_hits == CORPUS_SIZE
    ratio = measurements["warm_s"] / measurements["cold_s"]
    assert ratio < 0.25, (
        f"warm rerun took {ratio:.1%} of the cold run (budget 25%)"
    )


def test_auto_workers_decision_recorded(measurements):
    auto = measurements["auto"]
    expected_workers, expected_fallback = resolve_workers("auto", CORPUS_SIZE)
    assert auto.workers == expected_workers
    assert auto.serial_fallback is expected_fallback
    # Whatever "auto" picked, output bytes match the serial baseline.
    for auto_out, serial_out in zip(
        auto.outcomes, measurements["serial"].outcomes
    ):
        assert apk_to_bytes(auto_out.result.apk) == apk_to_bytes(
            serial_out.result.apk
        )


def test_bench_artifact_written(measurements):
    with open(BENCH_OUT, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["corpus_apps"] == CORPUS_SIZE
    assert payload["warm_cache_hits"] == CORPUS_SIZE
    assert "auto_serial_fallback" in payload
    assert payload["auto_workers_resolved"] >= 1
