"""Reporting pipeline throughput: a million devices in bounded memory.

The ROADMAP north star is "heavy traffic from millions of users".  This
smoke bench streams a synthetic fleet through the full signed-report
pipeline (sign -> client -> sharded server -> sliding-window verdict)
and asserts the two properties that make that scale workable:

* throughput -- devices/s and reports/s stay above conservative floors
  (an order of magnitude under what a laptop does, so CI noise does
  not flake the job);
* memory -- peak tracked state is bounded by the shard caps and does
  not grow with the device count.

Scale via ``REPRO_BENCH_SCALE`` like the other benches.
"""

from __future__ import annotations

import pytest

from repro.reporting import (
    AggregatedVerdict,
    FleetConfig,
    OutcomeModel,
    TakedownPolicy,
    run_fleet,
)

from conftest import SCALE

DEVICES = int(1_000_000 * SCALE)
TARGET_REPORTS = 5_000

#: Conservative floors -- a laptop does ~100x these.
MIN_DEVICES_PER_SECOND = 20_000
MIN_REPORTS_PER_SECOND = 200

MODEL = OutcomeModel(
    report_rate=1.0,           # capped by target_reports below
    observed_key_hex="bb" * 20,
    bad_experience_rate=0.35,
)


def _run(devices: int, seed: int = 9):
    config = FleetConfig(
        devices=devices,
        batch_size=max(1, devices // 16),
        shards=8,
        seed=seed,
        target_reports=TARGET_REPORTS,
    )
    return run_fleet("Game", "aa" * 20, MODEL, config)


@pytest.fixture(scope="module")
def fleet_result():
    return _run(DEVICES)


def test_million_device_fleet_completes(fleet_result):
    assert fleet_result.devices == DEVICES
    assert fleet_result.verdict is AggregatedVerdict.TAKEDOWN
    assert fleet_result.statuses.get("accepted", 0) > 100
    assert fleet_result.metrics["reporting.takedowns"] == 1


def test_throughput_floor(fleet_result):
    assert fleet_result.devices_per_second >= MIN_DEVICES_PER_SECOND, (
        f"{fleet_result.devices_per_second:,.0f} devices/s below floor"
    )
    assert fleet_result.reports_per_second >= MIN_REPORTS_PER_SECOND, (
        f"{fleet_result.reports_per_second:,.0f} reports/s below floor"
    )


def test_memory_is_o_shards_not_o_devices(fleet_result):
    policy = TakedownPolicy()
    per_shard_cap = 4096 + 4096 + policy.max_tracked_keys * (
        1 + policy.max_tracked_devices
    )
    assert fleet_result.peak_tracked_state <= 8 * per_shard_cap

    # 4x fewer devices, same report budget: peak state must be in the
    # same ballpark, not 4x smaller -- it tracks reports and shard caps,
    # never the device count.
    quarter = _run(max(1000, DEVICES // 4))
    assert fleet_result.peak_tracked_state <= quarter.peak_tracked_state * 1.5 + 64
