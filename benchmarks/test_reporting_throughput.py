"""Reporting pipeline throughput: a million devices in bounded memory.

The ROADMAP north star is "heavy traffic from millions of users".  This
smoke bench streams a synthetic fleet through the full signed-report
pipeline (sign -> client -> sharded server -> sliding-window verdict)
and asserts the two properties that make that scale workable:

* throughput -- devices/s and reports/s stay above conservative floors
  (an order of magnitude under what a laptop does, so CI noise does
  not flake the job);
* memory -- peak tracked state is bounded by the shard caps and does
  not grow with the device count.

Scale via ``REPRO_BENCH_SCALE`` like the other benches.
"""

from __future__ import annotations

import pytest

from repro.reporting import (
    AggregatedVerdict,
    FleetConfig,
    OutcomeModel,
    TakedownPolicy,
    run_fleet,
)

from conftest import SCALE

DEVICES = int(1_000_000 * SCALE)
TARGET_REPORTS = 5_000

#: Conservative floors -- a laptop does ~100x these.
MIN_DEVICES_PER_SECOND = 20_000
MIN_REPORTS_PER_SECOND = 200

MODEL = OutcomeModel(
    report_rate=1.0,           # capped by target_reports below
    observed_key_hex="bb" * 20,
    bad_experience_rate=0.35,
)


def _run(devices: int, seed: int = 9):
    config = FleetConfig(
        devices=devices,
        batch_size=max(1, devices // 16),
        shards=8,
        seed=seed,
        target_reports=TARGET_REPORTS,
    )
    return run_fleet("Game", "aa" * 20, MODEL, config)


@pytest.fixture(scope="module")
def fleet_result():
    return _run(DEVICES)


def test_million_device_fleet_completes(fleet_result):
    assert fleet_result.devices == DEVICES
    assert fleet_result.verdict is AggregatedVerdict.TAKEDOWN
    assert fleet_result.statuses.get("accepted", 0) > 100
    assert fleet_result.metrics["reporting.takedowns"] == 1


def test_throughput_floor(fleet_result):
    assert fleet_result.devices_per_second >= MIN_DEVICES_PER_SECOND, (
        f"{fleet_result.devices_per_second:,.0f} devices/s below floor"
    )
    assert fleet_result.reports_per_second >= MIN_REPORTS_PER_SECOND, (
        f"{fleet_result.reports_per_second:,.0f} reports/s below floor"
    )


def test_memory_is_o_shards_not_o_devices(fleet_result):
    policy = TakedownPolicy()
    per_shard_cap = 4096 + 4096 + policy.max_tracked_keys * (
        1 + policy.max_tracked_devices
    )
    assert fleet_result.peak_tracked_state <= 8 * per_shard_cap

    # 4x fewer devices, same report budget: peak state must be in the
    # same ballpark, not 4x smaller -- it tracks reports and shard caps,
    # never the device count.
    quarter = _run(max(1000, DEVICES // 4))
    assert fleet_result.peak_tracked_state <= quarter.peak_tracked_state * 1.5 + 64


def _timed_ingest(signed_reports, data_dir=None):
    import time

    from repro.reporting import ReportServer

    server = ReportServer(shards=8, data_dir=data_dir, snapshot_every=10**9)
    server.register_app("Game", "aa" * 20)
    started = time.perf_counter()
    for signed in signed_reports:
        server.submit(signed)
    server.process()
    elapsed = time.perf_counter() - started
    verdicts = server.verdicts()
    if data_dir is not None:
        server.crash()
    return elapsed, verdicts, server


def test_wal_ingest_overhead_under_2x(tmp_path):
    """Journaling every accepted report must cost < 2x in-memory ingest
    (RSA signature verification dominates the submit path)."""
    from repro.crypto import RSAKeyPair
    from repro.reporting import DetectionReport, sign_report

    attest = RSAKeyPair.generate(seed=9)
    count = max(300, int(1500 * SCALE))
    signed = [
        sign_report(
            DetectionReport(
                app_name="Game", bomb_id=f"b{i % 8}",
                device_id=f"dev-{i:06d}", observed_key_hex="bb" * 20,
                timestamp=float(i) / 10.0, nonce=10_000 + i,
            ),
            attest,
        )
        for i in range(count)
    ]

    # Warm-up pass so neither timed run pays first-touch costs.
    _timed_ingest(signed[: count // 10])
    memory_s, memory_verdicts, _ = _timed_ingest(signed)
    walled_s, walled_verdicts, walled = _timed_ingest(
        signed, data_dir=str(tmp_path / "state")
    )
    assert walled_verdicts == memory_verdicts
    # + the register record and the journaled takedown transition
    assert walled.metrics.counter("wal.appends").value == count + 2
    assert walled_s <= 2.0 * memory_s, (
        f"WAL ingest {walled_s:.3f}s vs in-memory {memory_s:.3f}s "
        f"({walled_s / memory_s:.2f}x, budget 2.00x)"
    )


def test_torn_final_record_recovers(tmp_path):
    """Acceptance gate: a torn final WAL record is detected exactly once
    and every acked report survives recovery."""
    import os
    import struct

    from repro.crypto import RSAKeyPair
    from repro.reporting import DetectionReport, ReportServer, sign_report

    data_dir = str(tmp_path / "state")
    attest = RSAKeyPair.generate(seed=9)
    server = ReportServer(shards=8, data_dir=data_dir)
    server.register_app("Game", "aa" * 20)
    accepted = []
    for i in range(64):
        signed = sign_report(
            DetectionReport(
                app_name="Game", bomb_id="b0", device_id=f"dev-{i:04d}",
                observed_key_hex="bb" * 20, timestamp=float(i),
                nonce=50_000 + i,
            ),
            attest,
        )
        server.submit(signed)
        accepted.append(signed)
    server.process()
    expected = server.verdicts()
    server.crash()
    with open(os.path.join(data_dir, "wal-000.log"), "ab") as handle:
        handle.write(struct.pack(">II", 64, 0xDEADBEEF) + b"\x00" * 10)

    recovered = ReportServer.recover(data_dir, shards=8)
    assert recovered.metrics.counter("recovery.torn_records").value == 1
    recovered.process()
    assert recovered.verdicts() == expected
    from repro.reporting import SubmitStatus

    assert all(
        recovered.submit(s) is SubmitStatus.DUPLICATE for s in accepted
    )
    recovered.close()
