"""Shared benchmark fixtures.

Every table/figure bench draws from one set of protected named apps,
built once per session.  Scale knobs (environment variables):

``REPRO_BENCH_SCALE``     multiplies simulated durations and run counts
                          (default 1.0 -- the reduced-but-representative
                          defaults documented in EXPERIMENTS.md)
``REPRO_BENCH_APPS``      how many of the eight named apps to use
                          (default 8)

The paper's full protocol (1-hour fuzzing sessions, 50 user runs per
app, 963 corpus apps) is reproduced at reduced scale; EXPERIMENTS.md
records the exact parameters next to each result.
"""

from __future__ import annotations

import os

import pytest

from repro import BombDroid, BombDroidConfig, build_named_app, repackage
from repro.corpus import NAMED_APPS
from repro.crypto import RSAKeyPair

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
APP_COUNT = int(os.environ.get("REPRO_BENCH_APPS", "8"))

#: Simulated seconds standing in for the paper's "one hour" of fuzzing.
FUZZ_HOUR = 600.0 * SCALE

#: Profiling events for the protection pipeline (paper: 10,000).
PROFILING_EVENTS = int(1500 * SCALE)


def scaled(value: float) -> float:
    return value * SCALE


try:
    import pytest_benchmark  # noqa: F401
except ImportError:
    # CI smoke jobs install pytest only; the benches there use the
    # fixture solely as `benchmark.pedantic(run, rounds=1, iterations=1)`
    # so a pass-through shim keeps them runnable without the plugin.
    class _PedanticShim:
        @staticmethod
        def pedantic(target, args=(), kwargs=None, rounds=1, iterations=1):
            return target(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _PedanticShim()


@pytest.fixture(scope="session")
def named_app_names():
    return [spec.name for spec in NAMED_APPS[:APP_COUNT]]


@pytest.fixture(scope="session")
def bundles(named_app_names):
    """name -> AppBundle for the selected named apps."""
    return {name: build_named_app(name) for name in named_app_names}


@pytest.fixture(scope="session")
def protections(bundles):
    """name -> (protected_apk, report)."""
    out = {}
    for name, bundle in bundles.items():
        config = BombDroidConfig(seed=17, profiling_events=PROFILING_EVENTS)
        out[name] = BombDroid(config).protect(bundle.apk, bundle.developer_key)
    return out


@pytest.fixture(scope="session")
def attacker_key():
    return RSAKeyPair.generate(seed=4040)


@pytest.fixture(scope="session")
def pirated(protections, attacker_key):
    """name -> repackaged (pirated) APK."""
    return {
        name: repackage(protected, attacker_key)
        for name, (protected, _) in protections.items()
    }


def print_table(title: str, headers, rows) -> None:
    """Uniform table printer for every bench's output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
