"""Figure 3: how AndroFish's program variables vary over an hour.

Paper: Dynodroid runs AndroFish for one hour; six fish-state variables
(dir, width, height, speed, posX, posY) are sampled once per minute.
Variables with many unique values (posX, posY, speed) make resilient
artificial QCs; dir (two values) does not.
"""

from conftest import print_table, scaled

from repro.analysis import FieldValueProfiler
from repro.corpus import build_named_app
from repro.vm.device import DevicePopulation
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator, FuzzSession

FIGURE3_FIELDS = ["dir", "width", "height", "speed", "posX", "posY"]
DURATION = scaled(3600.0)
SAMPLE_EVERY = 60.0


def test_figure3(benchmark):
    bundle = build_named_app("AndroFish")
    profiler = FieldValueProfiler()

    def run():
        session = FuzzSession(
            bundle.dex,
            DynodroidGenerator(bundle.dex, seed=33),
            DevicePopulation(seed=33).sample(),
            package=bundle.apk.install_view(),
            seed=33,
        )
        session.run_for(
            DURATION,
            sample_every=SAMPLE_EVERY,
            on_sample=lambda runtime, elapsed: profiler.sample(runtime),
        )
        return profiler

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for field in FIGURE3_FIELDS:
        history = profiler.history_of(f"Fish.{field}")
        assert history is not None, f"Fish.{field} never sampled"
        values = [v for _, v in history.samples]
        rows.append(
            (
                field,
                history.unique_count,
                min(values),
                max(values),
                len(values),
            )
        )
    print_table(
        f"Figure 3 (AndroFish variables over {DURATION:.0f}s, 1 sample/min)",
        ["variable", "unique values", "min", "max", "samples"],
        rows,
    )

    by_name = {row[0]: row[1] for row in rows}
    # The paper's qualitative picture: dir takes very few values; the
    # position/speed variables take many.
    assert by_name["dir"] <= 3
    assert by_name["posX"] > by_name["dir"]
    assert by_name["posY"] > by_name["dir"]
    assert by_name["speed"] >= by_name["width"]

    # And the entropy ranking would pick the high-entropy fields for
    # artificial QCs.
    ranked = [h.name for h in profiler.rank_by_entropy()]
    fish_ranked = [name for name in ranked if name.startswith("Fish.")]
    assert "Fish.dir" not in fish_ranked[:3]
