"""Table 1: static characteristics of the app corpus.

Paper: 963 F-Droid apps across eight categories; reports per-category
averages of LOC, candidate methods, existing QCs, and environment
variables used.  We generate a sampled corpus per category (the paper's
full population is encoded in the category profiles) and measure the
same statistics with our own analyses.
"""

import os

from conftest import PROFILING_EVENTS, SCALE, print_table

from repro.analysis import find_qualified_conditions, profile_hot_methods
from repro.corpus import CATEGORY_PROFILES, generate_corpus
from repro.dex.opcodes import Op
from repro.fuzzing import DynodroidGenerator
from repro.vm import Runtime

APPS_PER_CATEGORY = max(1, int(2 * SCALE))
CORPUS_SCALE = 0.25  # app size relative to the category's Table 1 average


def _env_var_count(dex) -> int:
    names = set()
    for method in dex.iter_methods():
        for pc, instr in enumerate(method.instructions):
            if instr.op is Op.INVOKE and instr.value == "android.env.get":
                from repro.analysis.defs import constant_in_block

                info = constant_in_block(method, pc, instr.args[0])
                if info is not None:
                    names.add(info[1])
    return len(names)


def _measure_category(profile):
    apps = list(
        generate_corpus(profile.name, APPS_PER_CATEGORY, scale=CORPUS_SCALE, seed=profile.app_count)
    )
    stats = {"instructions": 0, "candidates": 0, "qcs": 0, "env": 0}
    for bundle in apps:
        stats["instructions"] += bundle.dex.instruction_count()
        runtime = Runtime(bundle.dex, package=bundle.apk.install_view(), seed=1)
        runtime.boot()
        events = DynodroidGenerator(bundle.dex, seed=1).stream(
            max(100, PROFILING_EVENTS // 4)
        )
        hot = profile_hot_methods(runtime, events)
        stats["candidates"] += len(hot.candidate_methods)
        stats["qcs"] += sum(
            len(find_qualified_conditions(bundle.dex.get_method(name)))
            for name in hot.candidate_methods
        )
        stats["env"] += _env_var_count(bundle.dex)
    count = len(apps)
    return {key: value / count for key, value in stats.items()}


def test_table1(benchmark):
    rows = []

    def run():
        for profile in CATEGORY_PROFILES:
            measured = _measure_category(profile)
            rows.append(
                (
                    profile.name,
                    profile.app_count,
                    f"{measured['instructions']:.0f} (paper LOC/4: {profile.avg_loc * CORPUS_SCALE:.0f})",
                    f"{measured['candidates']:.0f} ({profile.avg_candidate_methods * CORPUS_SCALE:.0f})",
                    f"{measured['qcs']:.0f} ({profile.avg_existing_qcs * CORPUS_SCALE:.0f})",
                    f"{measured['env']:.0f} ({profile.avg_env_vars})",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 1 ({APPS_PER_CATEGORY} sampled apps/category at {CORPUS_SCALE}x size; "
        "measured (paper target, scaled)",
        ["category", "#apps(paper)", "avg instrs", "avg candidates", "avg QCs", "env vars"],
        rows,
    )
    # Shape assertions: ordering by size matches the paper's table.
    sizes = [float(row[2].split()[0]) for row in rows]
    assert sizes[0] < sizes[-1]  # Game apps smallest, Development largest
    qcs = [float(row[4].split()[0]) for row in rows]
    assert all(value >= 2 for value in qcs)
