"""Section 8.4 side effects: false positives and code-size increase.

Paper: ten hours of Dynodroid on every protected (but genuine) app
produced zero false positives; APK size grew 8-13% (average 9.7%).
"""

from conftest import FUZZ_HOUR, print_table

from repro.fuzzing import DynodroidGenerator, FuzzSession
from repro.vm import DevicePopulation


def test_zero_false_positives(benchmark, protections, named_app_names):
    """Response code must never run on a non-repackaged app."""
    outcomes = []

    def run():
        population = DevicePopulation(seed=900)
        for index, name in enumerate(named_app_names):
            protected, _ = protections[name]
            session = FuzzSession(
                protected.dex(),
                DynodroidGenerator(protected.dex(), seed=900 + index),
                population.sample(),
                package=protected.install_view(),
                seed=900 + index,
            )
            result = session.run_for(FUZZ_HOUR / 2)
            outcomes.append(
                (
                    name,
                    result.events_played,
                    len(result.bombs_inner_met),
                    len(result.bombs_detected),
                    len(result.bombs_responded),
                )
            )
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 8.4 false positives (genuine installs; paper: zero)",
        ["app", "events", "bombs inner-met", "detections", "responses"],
        outcomes,
    )
    # Bombs may fire and *check* on a genuine app; they must never
    # detect or respond.
    assert all(row[3] == 0 for row in outcomes)
    assert all(row[4] == 0 for row in outcomes)


def test_code_size_increase(benchmark, protections, named_app_names):
    rows = []
    increases = []

    def run():
        for name in named_app_names:
            _, report = protections[name]
            increases.append(report.size_increase)
            rows.append(
                (
                    name,
                    report.size_before,
                    report.size_after,
                    f"{report.size_increase:+.1%}",
                    report.instructions_before,
                    report.instructions_after,
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 8.4 size increase (paper: 8-13%, avg 9.7% of APK)",
        ["app", "APK before", "APK after", "increase", "instrs before", "instrs after"],
        rows,
    )
    mean = sum(increases) / len(increases)
    print(f"mean APK size increase: {mean:+.1%}")
    assert 0.03 <= mean <= 0.30
    assert all(increase < 0.40 for increase in increases)
