"""Table 2: logic bombs injected per app.

Paper (for the eight named apps): total bombs injected, split into
bombs built on existing qualified conditions vs artificial ones --
e.g. AndroFish 67 = 36 existing + 31 artificial, BRouter largest (263),
Angulo smallest (43).
"""

from conftest import print_table

from repro.core.stats import BombOrigin
from repro.corpus import NAMED_APP_BY_NAME


def test_table2(benchmark, protections, named_app_names):
    rows = []

    def run():
        for name in named_app_names:
            _, report = protections[name]
            rows.append(
                (
                    name,
                    report.total_injected,
                    report.count_by_origin(BombOrigin.EXISTING),
                    report.count_by_origin(BombOrigin.ARTIFICIAL),
                    report.count_by_origin(BombOrigin.BOGUS),
                    NAMED_APP_BY_NAME[name].paper_bombs,
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table 2 (injected logic bombs)",
        ["app", "bombs", "existing QC", "artificial QC", "bogus", "paper total"],
        rows,
    )

    by_name = {row[0]: row for row in rows}
    for name, bombs, existing, artificial, bogus, paper in rows:
        assert bombs >= 5, f"{name} got too few bombs"
        assert existing > 0 and artificial > 0

    # Shape: the paper's ordering extremes hold -- BRouter gets by far
    # the most bombs; Angulo sits among the smallest (at our reduced
    # app sizes the bottom three are within a few bombs of each other,
    # so we assert membership rather than the exact minimum).
    if "BRouter" in by_name and "Angulo" in by_name:
        totals = {name: row[1] for name, row in by_name.items()}
        assert totals["BRouter"] == max(totals.values())
        smallest_three = sorted(totals.values())[:3]
        assert totals["Angulo"] <= smallest_three[-1]

    # Ratio shape: every app has more existing-QC bombs than artificial
    # ones (as in all eight paper rows except none).
    for name, bombs, existing, artificial, *_ in rows:
        assert existing >= artificial * 0.5
