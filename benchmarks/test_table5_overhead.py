"""Table 5: execution-time overhead of protection.

Paper: the same 20,000-event stream is fed to the original and the
protected app; overhead = (Tb - Ta) / Ta, at most 2.6% (avg ~2%).
The small overhead comes from (1) hot methods excluded, (2) payloads
dormant until triggered, (3) decrypted payloads cached.

We measure with the interpreter's deterministic cost model (one unit
per instruction, published weights per framework call), which removes
host noise; wall-clock is also reported via pytest-benchmark.

Includes the hot-method-exclusion ablation the paper's design implies.
"""

from conftest import PROFILING_EVENTS, SCALE, print_table

from repro import BombDroid, BombDroidConfig
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator
from repro.vm import ContainmentPolicy, DevicePopulation, Runtime

EVENTS = max(800, int(3000 * SCALE))


def _run_session(apk, seed: int, containment=None) -> Runtime:
    device = DevicePopulation(seed=seed).sample()
    runtime = Runtime(
        apk.dex(), device=device, package=apk.install_view(), seed=seed,
        containment=containment,
    )
    try:
        runtime.boot()
    except VMError:
        pass
    for event in DynodroidGenerator(apk.dex(), seed=seed).stream(EVENTS):
        try:
            runtime.dispatch(event)
        except VMError:
            pass
    return runtime


def _cost_of(apk, seed: int) -> int:
    return _run_session(apk, seed).cost_units


def test_table5(benchmark, bundles, protections, named_app_names):
    rows = []
    overheads = []

    def run():
        for index, name in enumerate(named_app_names):
            original = bundles[name].apk
            protected, _ = protections[name]
            cost_a = _cost_of(original, seed=70 + index)
            cost_b = _cost_of(protected, seed=70 + index)
            overhead = (cost_b - cost_a) / cost_a
            overheads.append(overhead)
            rows.append((name, cost_a, cost_b, f"{overhead:+.1%}"))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 5 (execution cost over {EVENTS} events; paper: <=2.6% time overhead)",
        ["app", "cost original", "cost protected", "overhead"],
        rows,
    )
    mean = sum(overheads) / len(overheads)
    print(f"mean overhead: {mean:+.1%}")

    # Shape: overhead stays a modest fraction of baseline cost (the
    # paper reports <=2.6% wall-clock; our synthetic apps are ~10x
    # smaller and interpreted, so fixed per-bomb costs weigh relatively
    # more -- see EXPERIMENTS.md deviation 2).
    assert mean < 0.6
    assert all(overhead < 1.2 for overhead in overheads)


def test_table5_containment_overhead(benchmark, protections, named_app_names):
    """Containment guard: with a ContainmentPolicy armed and zero faults
    injected, the boundary must be free -- <5% cost delta and bit-for-bit
    identical bomb statistics versus the plain protected run."""
    rows = []

    def run():
        for index, name in enumerate(named_app_names):
            protected, _ = protections[name]
            plain = _run_session(protected, seed=70 + index)
            contained = _run_session(
                protected, seed=70 + index, containment=ContainmentPolicy()
            )
            delta = (contained.cost_units - plain.cost_units) / plain.cost_units
            rows.append(
                (name, plain.cost_units, contained.cost_units, f"{delta:+.2%}")
            )
            assert abs(delta) < 0.05, f"{name}: containment overhead {delta:+.2%}"
            # Fault-free containment is semantically invisible: same
            # trigger/detection numbers, same observable output.
            assert contained.bombs.counts == plain.bombs.counts
            assert contained.detections == plain.detections
            assert contained.logs == plain.logs
            assert contained.ui_effects == plain.ui_effects
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table 5 containment guard (policy on, no faults; must be <5%)",
        ["app", "cost plain", "cost contained", "delta"],
        rows,
    )


def test_table5_hot_method_ablation(benchmark, bundles, named_app_names):
    """Instrumenting hot methods (no exclusion, no loop avoidance)
    must cost measurably more than the default policy."""
    name = named_app_names[0]
    bundle = bundles[name]

    def run():
        results = {}
        for label, kwargs in (
            ("default", {}),
            ("no-hot-exclusion", {"exclude_hot_methods": False, "avoid_loops": False}),
        ):
            config = BombDroidConfig(
                seed=17, profiling_events=PROFILING_EVENTS, **kwargs
            )
            protected, _ = BombDroid(config).protect(
                bundle.apk, bundle.developer_key
            )
            base = _cost_of(bundle.apk, seed=71)
            cost = _cost_of(protected, seed=71)
            results[label] = (cost - base) / base
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Table 5 ablation ({name}) === default: {results['default']:+.1%} "
        f"vs no-hot-exclusion: {results['no-hot-exclusion']:+.1%}"
    )
    assert results["no-hot-exclusion"] > results["default"]
