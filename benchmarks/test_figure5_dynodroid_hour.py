"""Figure 5: bombs fully triggered by Dynodroid over one hour.

Paper: per app, the number of *fully* triggered double-trigger bombs
(outer + inner) grows for the first ~35 minutes and plateaus; at most
6.4% of bombs trigger -- the rest stay dormant in the attacker's lab.

Includes the single-trigger ablation: without the environment-sensitive
inner condition, the same fuzzing run detonates several times more
bombs, demonstrating why double triggers matter (Section 6).
"""

from conftest import FUZZ_HOUR, PROFILING_EVENTS, print_table

from repro import BombDroid, BombDroidConfig
from repro.attacks import FuzzingAttack


def test_figure5(benchmark, protections, named_app_names):
    rows = []
    rates = []
    curves = {}

    def run():
        for index, name in enumerate(named_app_names):
            protected, report = protections[name]
            bomb_ids = [bomb.bomb_id for bomb in report.real_bombs()]
            attack = FuzzingAttack(duration_seconds=FUZZ_HOUR, seed=300 + index)
            outcome = attack.run_one(protected, "dynodroid", bomb_ids)
            rates.append(outcome.fully_triggered_rate)
            curves[name] = outcome.trigger_curve
            rows.append(
                (
                    name,
                    outcome.total_bombs,
                    outcome.fully_triggered,
                    f"{outcome.fully_triggered_rate:.1%}",
                    f"{outcome.outer_satisfied_rate:.1%}",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Figure 5 (double-trigger bombs fully triggered by Dynodroid in "
        f"{FUZZ_HOUR:.0f}s; paper: <=6.4%)",
        ["app", "bombs", "fully triggered", "rate", "outer-only rate"],
        rows,
    )
    first = named_app_names[0]
    print(f"trigger curve for {first}: {curves[first]}")

    mean_rate = sum(rates) / len(rates)
    print(f"mean full-trigger rate: {mean_rate:.1%}")
    # Shape: the vast majority of bombs stay dormant in the lab, and the
    # outer-only rate is several times the full rate (the inner trigger
    # is doing the concealment).
    assert mean_rate <= 0.25
    for name, total, full, rate, outer in rows:
        assert float(outer.rstrip("%")) >= float(rate.rstrip("%"))


def test_figure5_single_trigger_ablation(benchmark, bundles, named_app_names):
    """Ablation: single-trigger bombs trigger far more under fuzzing."""
    name = named_app_names[0]
    bundle = bundles[name]

    def run():
        double_cfg = BombDroidConfig(seed=17, profiling_events=PROFILING_EVENTS)
        single_cfg = BombDroidConfig(
            seed=17, profiling_events=PROFILING_EVENTS, double_trigger=False
        )
        results = {}
        for label, config in (("double", double_cfg), ("single", single_cfg)):
            protected, report = BombDroid(config).protect(
                bundle.apk, bundle.developer_key
            )
            attack = FuzzingAttack(duration_seconds=FUZZ_HOUR, seed=55)
            outcome = attack.run_one(
                protected, "dynodroid", [b.bomb_id for b in report.real_bombs()]
            )
            # A single-trigger bomb is "fully triggered" once its outer
            # condition fires (there is no inner gate).
            rate = (
                outcome.fully_triggered_rate
                if label == "double"
                else outcome.outer_satisfied_rate
            )
            results[label] = rate
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Figure 5 ablation ({name}) === single-trigger: "
        f"{results['single']:.1%} vs double-trigger: {results['double']:.1%}"
    )
    assert results["single"] > results["double"]
