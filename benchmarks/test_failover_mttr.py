"""Failover MTTR bench: kill the leader, time the self-healing.

A replicated cluster (durable leader + WAL-shipping follower) runs
under a threaded :class:`ClusterSupervisor` with a fast heartbeat.  The
bench SIGKILL-models the leader (``ServiceHandle.kill()`` + server
crash, no drain), then measures:

* **detection** -- first missed heartbeat to the dead declaration
  (supervisor's own event record);
* **promotion** -- dead declaration to the promoted service accepting
  connections;
* **MTTR** -- the client-observed gap: kill instant to the first report
  accepted by the new leader, through a transport that only knows
  ``supervisor.endpoint()``.

Convergence is gated too: every pre-kill report answers DUPLICATE on
the new leader, the post-failover verdict equals an uninterrupted
baseline's, and the epoch grew.  Results land in
``BENCH_failover.json`` for the CI artifact.  Ceilings are loose --
they catch order-of-magnitude regressions, not jitter.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.crypto import RSAKeyPair
from repro.errors import TransportError
from repro.reporting import (
    AggregatedVerdict,
    DetectionReport,
    ReportServer,
    SubmitStatus,
    TakedownPolicy,
    sign_report,
)
from repro.reporting.net import (
    ClusterSupervisor,
    ReplicaFollower,
    ServiceHandle,
    TcpTransport,
)

from conftest import SCALE, print_table

BENCH_OUT = "BENCH_failover.json"
REPORTS = max(12, int(40 * SCALE))
KILL_AT = REPORTS // 2

#: Loose ceilings (seconds).  With a 0.02s heartbeat and 3-miss
#: threshold, detection lands around 0.06s and promotion well under a
#: second on any machine; the gates only catch gross regressions.
MAX_DETECTION_SECONDS = 10.0
MAX_PROMOTION_SECONDS = 10.0
MAX_MTTR_SECONDS = 20.0

ORIGINAL = "aa" * 20
PIRATE = "bb" * 20
APP = "Game"


def _stream(count):
    attest = RSAKeyPair.generate(seed=61)
    return [
        sign_report(
            DetectionReport(
                app_name=APP,
                bomb_id=f"b{i % 8:03d}",
                device_id=f"dev-{i:05d}",
                observed_key_hex=PIRATE,
                timestamp=10.0 + i * 0.01,
                nonce=40_000 + i,
            ),
            attest,
        )
        for i in range(count)
    ]


def _baseline(stream):
    server = ReportServer(shards=4, policy=TakedownPolicy(distinct_devices=3))
    server.register_app(APP, ORIGINAL)
    for signed in stream:
        server.submit(signed)
    server.process()
    return server.verdict(APP)


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    stream = _stream(REPORTS)
    expected_verdict, expected_offender = _baseline(stream)
    state = tmp_path_factory.mktemp("failover-mttr")

    server_kwargs = dict(shards=4, policy=TakedownPolicy(distinct_devices=3))
    leader = ReportServer(data_dir=str(state / "leader"), **server_kwargs)
    leader.register_app(APP, ORIGINAL)
    handle = ServiceHandle.start(
        leader, replication_port=0, heartbeat_interval=0.02
    )
    follower = ReplicaFollower(
        str(state / "replica"), handle.replication_address, expect_shards=4
    ).start()
    assert follower.wait_applied(1, timeout=20)

    supervisor = ClusterSupervisor(
        handle.address,
        [follower],
        server_kwargs=server_kwargs,
        miss_threshold=3,
        interval=0.02,
        probe_timeout=0.5,
    ).start()

    # The client only ever asks the supervisor where to write.
    transport = TcpTransport(supervisor.endpoint)
    for signed in stream[:KILL_AT]:
        assert transport(signed) is SubmitStatus.ACCEPTED
    assert follower.wait_applied(1 + KILL_AT, timeout=20)

    killed_at = time.monotonic()
    handle.kill()
    leader.crash()
    transport.close()  # the dead connection dies with the leader

    # MTTR: retry the next report until the healed cluster accepts it.
    first_accepted = None
    deadline = killed_at + 60
    while first_accepted is None:
        assert time.monotonic() < deadline, "cluster never healed"
        try:
            if transport(stream[KILL_AT]) is SubmitStatus.ACCEPTED:
                first_accepted = time.monotonic()
        except TransportError:
            time.sleep(0.01)
    mttr = first_accepted - killed_at

    # Drain the remainder, then check convergence.
    for signed in stream[KILL_AT + 1:]:
        assert transport(signed) is SubmitStatus.ACCEPTED
    duplicates = sum(
        1 for signed in stream[:KILL_AT]
        if transport(signed) is SubmitStatus.DUPLICATE
    )
    transport.close()

    event = supervisor.event
    verdict, offender = supervisor.promoted_handle.call(
        lambda s: (s.process(), s.verdict(APP))[1]
    )
    epoch = supervisor.promoted_server.epoch
    supervisor.shutdown()
    supervisor.promoted_server.close()
    follower.stop()

    payload = {
        "reports": REPORTS,
        "kill_offset": KILL_AT,
        "heartbeat_interval_seconds": 0.02,
        "miss_threshold": 3,
        "detection_seconds": round(event.detection_seconds, 4),
        "promotion_seconds": round(event.promotion_seconds, 4),
        "mttr_seconds": round(mttr, 4),
        "failovers": supervisor.failovers,
        "promoted_epoch": epoch,
        "follower_applied_at_promotion": event.follower_applied,
        "pre_kill_duplicates": duplicates,
        "verdict": verdict.name.lower(),
        "verdict_matches_baseline": (
            verdict is expected_verdict and offender == expected_offender
        ),
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2)

    print_table(
        "failover MTTR",
        ["metric", "value"],
        [
            ["reports", REPORTS],
            ["detection", f"{event.detection_seconds * 1e3:.1f} ms"],
            ["promotion", f"{event.promotion_seconds * 1e3:.1f} ms"],
            ["MTTR (client)", f"{mttr * 1e3:.1f} ms"],
            ["promoted epoch", epoch],
            ["verdict", payload["verdict"]],
            ["matches baseline", payload["verdict_matches_baseline"]],
        ],
    )
    return {
        "payload": payload,
        "event": event,
        "mttr": mttr,
        "duplicates": duplicates,
        "verdict": verdict,
        "offender": offender,
        "expected": (expected_verdict, expected_offender),
        "failovers": supervisor.failovers,
        "epoch": epoch,
    }


def test_exactly_one_automatic_failover(measurements):
    assert measurements["failovers"] == 1
    assert measurements["epoch"] == 1


def test_detection_and_promotion_ceilings(measurements):
    event = measurements["event"]
    assert 0 <= event.detection_seconds <= MAX_DETECTION_SECONDS
    assert 0 <= event.promotion_seconds <= MAX_PROMOTION_SECONDS


def test_mttr_ceiling(measurements):
    assert 0 < measurements["mttr"] <= MAX_MTTR_SECONDS, (
        f"client-observed MTTR {measurements['mttr']:.2f}s above "
        f"{MAX_MTTR_SECONDS}s"
    )


def test_no_report_lost_or_doubled(measurements):
    assert measurements["duplicates"] == KILL_AT


def test_verdict_matches_uninterrupted_baseline(measurements):
    expected_verdict, expected_offender = measurements["expected"]
    assert measurements["verdict"] is expected_verdict is AggregatedVerdict.TAKEDOWN
    assert measurements["offender"] == expected_offender == PIRATE


def test_bench_artifact_written(measurements):
    with open(BENCH_OUT, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["reports"] == REPORTS
    assert payload["mttr_seconds"] > 0
    assert payload["verdict_matches_baseline"] is True
