"""Figure 4: brute-force strength of outer trigger conditions.

Paper: obfuscation strength is classed by the trigger constant's type
-- string (strong), int (medium), boolean (weak).  Figure 4a shows a
high percentage of *existing* QCs are weak; Figure 4b shows *artificial*
QCs are all medium-to-strong (they are constructed from high-entropy
int/string fields).

The bench reports the histograms and validates them against a live
brute-force attack: weak always cracks, strong never cracks without a
dictionary.
"""

from conftest import print_table

from repro.analysis.qualified_conditions import Strength
from repro.attacks import BruteForceAttack, CrackOutcome
from repro.core.stats import BombOrigin


def test_figure4(benchmark, protections, named_app_names):
    rows = []
    totals = {
        BombOrigin.EXISTING: {s: 0 for s in Strength},
        BombOrigin.ARTIFICIAL: {s: 0 for s in Strength},
    }

    def run():
        for name in named_app_names:
            _, report = protections[name]
            existing = report.strength_histogram(BombOrigin.EXISTING)
            artificial = report.strength_histogram(BombOrigin.ARTIFICIAL)
            for strength in Strength:
                totals[BombOrigin.EXISTING][strength] += existing[strength]
                totals[BombOrigin.ARTIFICIAL][strength] += artificial[strength]
            rows.append(
                (
                    name,
                    existing[Strength.WEAK],
                    existing[Strength.MEDIUM],
                    existing[Strength.STRONG],
                    artificial[Strength.WEAK],
                    artificial[Strength.MEDIUM],
                    artificial[Strength.STRONG],
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 4 (outer-trigger strength; existing vs artificial QCs)",
        ["app", "ex.weak", "ex.med", "ex.strong", "ar.weak", "ar.med", "ar.strong"],
        rows,
    )

    existing_totals = totals[BombOrigin.EXISTING]
    artificial_totals = totals[BombOrigin.ARTIFICIAL]
    print("existing:", {s.value: n for s, n in existing_totals.items()})
    print("artificial:", {s.value: n for s, n in artificial_totals.items()})

    # Figure 4a: a high share of existing QCs is weak.
    existing_count = sum(existing_totals.values())
    assert existing_totals[Strength.WEAK] / existing_count >= 0.2
    # Figure 4b: artificial QCs are never weak.
    assert artificial_totals[Strength.WEAK] == 0
    assert artificial_totals[Strength.MEDIUM] + artificial_totals[Strength.STRONG] > 0


def test_figure4_brute_force_validation(benchmark, protections, named_app_names):
    """Strength classes predict real cracking outcomes."""
    name = named_app_names[0]
    _, report = protections[name]
    attack = BruteForceAttack(int_budget=30_000, dictionary=["hello", "test"])

    def run():
        return [attack.crack_bomb(bomb) for bomb in report.real_bombs()]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    by_strength = {}
    for crack in reports:
        by_strength.setdefault(crack.strength, []).append(crack)

    rows = [
        (
            strength.value,
            len(group),
            sum(1 for c in group if c.outcome is CrackOutcome.CRACKED),
            f"{sum(c.tries for c in group) / len(group):.0f}",
        )
        for strength, group in sorted(by_strength.items(), key=lambda kv: kv[0].value)
    ]
    print_table(
        f"Figure 4 validation ({name}: brute force, budget 30k tries)",
        ["strength", "bombs", "cracked", "avg tries"],
        rows,
    )

    if Strength.WEAK in by_strength:
        assert all(
            c.outcome is CrackOutcome.CRACKED for c in by_strength[Strength.WEAK]
        )
    if Strength.STRONG in by_strength:
        # Strings outside the tiny dictionary must survive.
        survivors = [
            c for c in by_strength[Strength.STRONG]
            if c.outcome is CrackOutcome.INFEASIBLE
        ]
        assert survivors or len(by_strength[Strength.STRONG]) <= 2
