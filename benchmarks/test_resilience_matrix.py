"""Sections 2.1 & 5: the resilience matrix.

SSN (and the naive Listing-2 design) fall to standard adversary
analyses; BombDroid resists every one of them.  This bench runs the
full attack suite against all three defenses on the same app and
prints the matrix.
"""

from conftest import print_table

from repro import BombDroid, BombDroidConfig
from repro.attacks import (
    EXTENDED_SIGNATURE,
    AdaptiveStripperAttack,
    DeletionAttack,
    ForcedExecutionAttack,
    InstrumentationAttack,
    SlicingAttack,
    StaticTriggerDetector,
    SymbolicAttack,
    TextSearchAttack,
    VTableHijackAttack,
)
from repro.core import SSNConfig, SSNProtector
from repro.core.naive import NaiveProtector
from repro.corpus import build_named_app
from repro.crypto import RSAKeyPair


def _verdict(result) -> str:
    return "DEFEATED" if result.defeated_defense else "resisted"


def test_resilience_matrix(benchmark, attacker_key):
    bundle = build_named_app("SWJournal", scale=0.5)
    original_key = bundle.apk.cert.fingerprint_hex()

    naive, _ = NaiveProtector(seed=8).protect(bundle.apk, bundle.developer_key)
    ssn, _ = SSNProtector(SSNConfig(seed=8)).protect(bundle.apk, bundle.developer_key)
    bombdroid, report = BombDroid(
        BombDroidConfig(seed=8, profiling_events=600)
    ).protect(bundle.apk, bundle.developer_key)

    rows = []
    details = {}

    def run():
        text = [TextSearchAttack().run(apk) for apk in (naive, ssn, bombdroid)]
        rows.append(("text search", *map(_verdict, text)))

        symbolic = [
            SymbolicAttack(max_paths=24, max_steps=1200).run(apk)
            for apk in (naive, ssn, bombdroid)
        ]
        rows.append(("symbolic execution", *map(_verdict, symbolic)))
        details["hash_walls"] = symbolic[2].details["hash_walls"]
        details["ssn_leaked_key"] = bool(symbolic[1].details["leaked_key_constants"])

        forced = [
            ForcedExecutionAttack(seed=9, per_method_branches=2).run(apk)
            for apk in (naive, ssn, bombdroid)
        ]
        rows.append(("forced execution", *map(_verdict, forced)))
        details["decrypt_failures"] = forced[2].details["decrypt_failures"]

        slicing = [
            SlicingAttack(seed=9, max_criteria=12).run(apk)
            for apk in (naive, ssn, bombdroid)
        ]
        rows.append(("backward slicing", *map(_verdict, slicing)))

        static = [
            StaticTriggerDetector().run(apk) for apk in (naive, ssn, bombdroid)
        ]
        rows.append(("static trigger analysis", *map(_verdict, static)))
        details["hso_naive_findings"] = static[0].details["findings"]
        details["hso_opaque_guards"] = static[2].details["opaque_guards"]

        instrumentation = InstrumentationAttack(seed=9)
        instr = [
            instrumentation.run_against_ssn(naive, attacker_key, original_key),
            instrumentation.run_against_ssn(ssn, attacker_key, original_key),
            instrumentation.run_against_bombdroid(bombdroid, attacker_key, original_key),
        ]
        rows.append(("code instrumentation", *map(_verdict, instr)))

        deletion = DeletionAttack(differential_events=400, seed=9)
        deletions = [
            deletion.run(apk, attacker_key, original=bundle.apk)
            for apk in (naive, ssn, bombdroid)
        ]
        rows.append(("code deletion", *map(_verdict, deletions)))
        details["deletion_corrupts_bombdroid"] = deletions[2].app_corrupted
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Resilience matrix (Sections 2.1 and 5)",
        ["attack", "naive bombs", "SSN", "BombDroid"],
        rows,
    )
    print(f"details: {details}")

    matrix = {row[0]: row[1:] for row in rows}
    # BombDroid resists everything (third column).
    assert all(cells[2] == "resisted" for cells in matrix.values())
    # The baselines each fall to the analyses the paper names.
    assert matrix["symbolic execution"][0] == "DEFEATED"   # naive
    assert matrix["symbolic execution"][1] == "DEFEATED"   # SSN
    assert matrix["code instrumentation"][1] == "DEFEATED" # SSN
    assert matrix["text search"][0] == "DEFEATED"          # naive
    assert matrix["static trigger analysis"][0] == "DEFEATED"  # naive
    assert details["hso_naive_findings"] > 0
    # The detector saw BombDroid's opaque guards yet the third-column
    # "resisted" above holds: nothing was localizable under them.
    assert details["hso_opaque_guards"] > 0
    assert details["hash_walls"] > 0
    assert details["ssn_leaked_key"]
    assert details["deletion_corrupts_bombdroid"]


def test_meshed_rows(benchmark, attacker_key):
    """The mesh PR's extension of the matrix: a meshed protection
    resists deletion at every signature tier, text search, and hooking.
    No single-pattern strip removes detection without corrupting the
    app, and the learned multi-pattern stripper only 'wins' by breaking
    the repackage."""
    from repro.core.config import DetectionMethod

    bundle = build_named_app("SWJournal", scale=0.5)
    meshed = BombDroid(
        BombDroidConfig(
            seed=8,
            profiling_events=600,
            mesh=True,
            detection_methods=(
                DetectionMethod.PUBLIC_KEY,
                DetectionMethod.CODE_DIGEST,
                DetectionMethod.CODE_SCAN,
            ),
        )
    ).protect(bundle.apk, bundle.developer_key)

    rows = []
    results = {}

    def run():
        results["classic"] = DeletionAttack(
            differential_events=400, seed=9
        ).run(meshed.apk, attacker_key, original=bundle.apk)
        results["extended"] = DeletionAttack(
            differential_events=400, seed=9, signature=EXTENDED_SIGNATURE
        ).run(meshed.apk, attacker_key, original=bundle.apk)
        results["adaptive"] = AdaptiveStripperAttack(
            differential_events=400, seed=9
        ).run(meshed.apk, attacker_key, original=bundle.apk)
        results["text"] = TextSearchAttack().run(meshed.apk)
        results["hooking"] = VTableHijackAttack(
            seed=5, sessions=5, events=500
        ).run(meshed.apk, meshed.report)
        for name, result in results.items():
            rows.append((name, _verdict(result)))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Meshed BombDroid vs the attack tiers", ["attack", "meshed"], rows
    )

    assert all(not result.defeated_defense for result in results.values())
    # Win condition per tier: a strip leaves live bombs or corrupts.
    for tier in ("classic", "extended"):
        outcome = results[tier]
        assert outcome.details["live_sites"] > 0 or outcome.app_corrupted
    assert results["adaptive"].app_corrupted
    # The hijack's hot-method edit is caught even under a perfect
    # identity spoof -- by a scan bomb or a mesh content pin.
    hooking = results["hooking"].details
    assert hooking["mesh_trips"] > 0 or hooking["code_scan_caught_it"]
