"""VM dispatch-engine bench: table-dispatch vs the reference oracle.

The acceptance bar for the dispatch-table interpreter rebuild:

* the table engine interprets >= 2x the instructions/second of the
  pre-rebuild interpreter (kept verbatim as ``engine="reference"``) on
  a fusion-heavy kernel;
* real protected-app play sessions are no slower than before
  (sessions/second ratio >= 1x -- in practice far better, since play
  time is interpreter-bound);
* Table 5 stays byte-stable: per-app ``cost_units`` (the overhead
  metric) are *equal* under both engines, along with every semantic
  observable (``table5_cost_parity``).

Results land in ``BENCH_vm_dispatch.json`` in the working directory so
CI can upload them as an artifact.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core import BombDroid, BombDroidConfig
from repro.corpus import build_app
from repro.dex import assemble
from repro.errors import MethodNotFound, VMError
from repro.fuzzing import DynodroidGenerator
from repro.vm import Runtime
from repro.vm.device import DevicePopulation

from conftest import SCALE, print_table

BENCH_OUT = "BENCH_vm_dispatch.json"
KERNEL_ITERATIONS = max(2_000, int(20_000 * SCALE))
SESSION_APPS = 2
SESSIONS_PER_APP = 3
SESSION_EVENTS = max(100, int(250 * SCALE))

# A fusion-heavy interpreter kernel: fused CONST pairs, CONST+compare,
# CONST+zero-test, app-to-app INVOKE and 32-bit wrapped arithmetic.
KERNEL_APP = """
.class K
.field sink static 0
.method mix 1
    mul_lit r1, r0, 2654435761
    xor_lit r1, r1, 40503
    rem_lit r1, r1, 8191
    return r1
.end
.method work 1
    const r1, 0
@loop:
    sub_lit r0, r0, 1
    const r2, 3
    mul_lit r3, r0, 7
    rem_lit r3, r3, 13
    if_lt r3, r2, @small
    add r1, r1, r3
    goto @next
@small:
    invoke r4, K.mix, r0
    add r1, r1, r4
@next:
    if_nez r0, @loop
    return r1
.end
"""


def _time_kernel(engine: str):
    runtime = Runtime(assemble(KERNEL_APP), seed=0, engine=engine)
    method = runtime.find_method("K.work")
    started = time.perf_counter()
    result = runtime.session(budget=50_000_000).run(method, [KERNEL_ITERATIONS])
    elapsed = time.perf_counter() - started
    return result.value, result.instructions, elapsed, runtime.cost_units


def _play_sessions(apk, engine: str, seed: int):
    """Calibration-protocol play sessions pinned to one engine.

    Mirrors ``repro.vm.sessions.SessionEngine.play`` exactly (device
    draws, seeds, budgets) but parameterizes the Runtime engine so the
    reference interpreter can serve as the timing baseline.
    """
    dex = apk.dex()
    package = apk.install_view()
    population = DevicePopulation(seed=seed)
    per_session = []
    started = time.perf_counter()
    for index in range(SESSIONS_PER_APP):
        session_seed = seed * 100 + index
        runtime = Runtime(
            dex, device=population.sample(), package=package,
            seed=session_seed, engine=engine,
        )
        try:
            runtime.boot()
        except VMError:
            pass
        instructions = 0
        for event in DynodroidGenerator(dex, seed=session_seed).stream(
            SESSION_EVENTS
        ):
            ctx = runtime.session()
            try:
                ctx.dispatch(event)
            except (MethodNotFound, VMError):
                pass
            finally:
                instructions += ctx.consumed
        per_session.append({
            "instructions": instructions,
            "cost_units": runtime.cost_units,
            "detections": tuple(runtime.detections),
            "reports": tuple(runtime.reports),
            "bomb_counts": {k: dict(v) for k, v in runtime.bombs.counts.items()},
            "statics": {k: repr(v) for k, v in runtime.statics.items()},
        })
    elapsed = time.perf_counter() - started
    return per_session, elapsed


@pytest.fixture(scope="module")
def protected_corpus():
    from repro.crypto import RSAKeyPair

    key = RSAKeyPair.generate(seed=55)
    apps = []
    for index in range(SESSION_APPS):
        bundle = build_app(f"Vm{index}", category="Game", seed=index, scale=0.3)
        config = BombDroidConfig(seed=21 + index, profiling_events=200)
        apps.append(BombDroid(config).protect(bundle.apk, key).apk)
    return apps


@pytest.fixture(scope="module")
def measurements(protected_corpus):
    ref_value, ref_instr, ref_kernel_s, ref_cost = _time_kernel("reference")
    tab_value, tab_instr, tab_kernel_s, tab_cost = _time_kernel("table")

    ref_sessions, ref_sessions_s = [], 0.0
    tab_sessions, tab_sessions_s = [], 0.0
    for index, apk in enumerate(protected_corpus):
        sessions, elapsed = _play_sessions(apk, "reference", seed=index + 1)
        ref_sessions.append(sessions)
        ref_sessions_s += elapsed
        sessions, elapsed = _play_sessions(apk, "table", seed=index + 1)
        tab_sessions.append(sessions)
        tab_sessions_s += elapsed

    total_sessions = SESSION_APPS * SESSIONS_PER_APP
    cost_parity = ref_sessions == tab_sessions and ref_cost == tab_cost
    payload = {
        "kernel": {
            "instructions": ref_instr,
            "reference_seconds": round(ref_kernel_s, 4),
            "table_seconds": round(tab_kernel_s, 4),
            "reference_ips": round(ref_instr / ref_kernel_s, 1),
            "table_ips": round(tab_instr / tab_kernel_s, 1),
            "speedup": round(ref_kernel_s / tab_kernel_s, 3),
        },
        "sessions": {
            "apps": SESSION_APPS,
            "sessions_per_app": SESSIONS_PER_APP,
            "events_per_session": SESSION_EVENTS,
            "reference_seconds": round(ref_sessions_s, 4),
            "table_seconds": round(tab_sessions_s, 4),
            "reference_sps": round(total_sessions / ref_sessions_s, 3),
            "table_sps": round(total_sessions / tab_sessions_s, 3),
            "speedup": round(ref_sessions_s / tab_sessions_s, 3),
        },
        "aggregate_speedup": round(
            (ref_kernel_s + ref_sessions_s) / (tab_kernel_s + tab_sessions_s), 3
        ),
        "table5_cost_parity": cost_parity,
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)

    print_table(
        "vm dispatch engine",
        ["workload", "reference", "table", "speedup"],
        [
            ["kernel (instr/s)",
             f"{payload['kernel']['reference_ips']:,.0f}",
             f"{payload['kernel']['table_ips']:,.0f}",
             f"{payload['kernel']['speedup']:.2f}x"],
            ["sessions (sess/s)",
             f"{payload['sessions']['reference_sps']:.2f}",
             f"{payload['sessions']['table_sps']:.2f}",
             f"{payload['sessions']['speedup']:.2f}x"],
        ],
    )
    return {
        "payload": payload,
        "kernel_values": (ref_value, tab_value),
        "kernel_instr": (ref_instr, tab_instr),
        "kernel_cost": (ref_cost, tab_cost),
        "ref_sessions": ref_sessions,
        "tab_sessions": tab_sessions,
    }


def test_kernel_semantics_identical(measurements):
    ref_value, tab_value = measurements["kernel_values"]
    ref_instr, tab_instr = measurements["kernel_instr"]
    assert tab_value == ref_value
    assert tab_instr == ref_instr
    assert measurements["kernel_cost"][0] == measurements["kernel_cost"][1]


def test_kernel_speedup_at_least_2x(measurements):
    speedup = measurements["payload"]["kernel"]["speedup"]
    assert speedup >= 2.0, f"kernel speedup {speedup:.2f}x below the 2x bar"


def test_sessions_no_slower(measurements):
    speedup = measurements["payload"]["sessions"]["speedup"]
    assert speedup >= 1.0, f"sessions ran {speedup:.2f}x -- slower than before"


def test_aggregate_speedup_at_least_2x(measurements):
    aggregate = measurements["payload"]["aggregate_speedup"]
    assert aggregate >= 2.0, f"aggregate speedup {aggregate:.2f}x below the 2x bar"


def test_table5_cost_parity(measurements):
    """Every session observable -- cost_units above all -- is equal
    under both engines, so Table 5's overhead numbers are byte-stable
    across the interpreter rebuild."""
    assert measurements["ref_sessions"] == measurements["tab_sessions"]
    assert measurements["payload"]["table5_cost_parity"] is True


def test_bench_artifact_written(measurements):
    with open(BENCH_OUT, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["kernel"]["table_ips"] > payload["kernel"]["reference_ips"]
    assert payload["table5_cost_parity"] is True
    assert payload["sessions"]["apps"] == SESSION_APPS
