"""Table 3: time to trigger the first logic bomb on user devices.

Paper: four human testers play each repackaged app on emulators with
varied configurations; 50 runs per app, 60-minute cap.  Results: first
bomb triggers between 8s and 778s, averages 75-164s, 50/50 success for
every app.

We replay the protocol with the device-population sampler; run count
and cap scale with REPRO_BENCH_SCALE.
"""

import math

from conftest import SCALE, print_table

from repro.userside import simulate_first_triggers

RUNS = max(4, int(6 * SCALE))
TIMEOUT = 700.0 * max(1.0, SCALE)


def test_table3(benchmark, pirated, named_app_names):
    rows = []
    stats_by_app = {}

    def run():
        for index, name in enumerate(named_app_names):
            stats = simulate_first_triggers(
                pirated[name], name, runs=RUNS,
                timeout_seconds=TIMEOUT, population_seed=index,
            )
            stats_by_app[name] = stats
            rows.append(
                (
                    name,
                    "-" if not stats.times else f"{stats.min_time:.0f}",
                    "-" if not stats.times else f"{stats.max_time:.0f}",
                    "-" if not stats.times else f"{stats.avg_time:.0f}",
                    stats.success_ratio,
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 3 (time to first trigger; {RUNS} runs/app, {TIMEOUT:.0f}s cap; "
        "paper: min 8-26s, max 213-778s, avg 75-164s, 50/50)",
        ["app", "min (s)", "max (s)", "avg (s)", "success"],
        rows,
    )

    total_success = sum(len(s.times) for s in stats_by_app.values())
    total_runs = sum(s.runs for s in stats_by_app.values())
    # Shape: the overwhelming majority of user runs trigger a bomb, and
    # average times are minutes, not hours.
    assert total_success / total_runs >= 0.7
    averages = [s.avg_time for s in stats_by_app.values() if s.times]
    assert all(not math.isnan(avg) for avg in averages)
    assert sum(averages) / len(averages) < TIMEOUT / 2
