"""Design-choice ablations from DESIGN.md.

* α sweep -- more artificial QCs means more (medium/strong) bombs at
  the cost of code size;
* salted vs unsalted hashing -- rainbow tables crack unsalted digests
  and nothing else;
* weaving vs not -- deletion corrupts woven apps.
  (covered per-attack in the test suite; here the corruption-rate
  comparison is benchmarked end to end.)
"""

from conftest import PROFILING_EVENTS, print_table

from repro import BombDroid, BombDroidConfig
from repro.attacks import DeletionAttack
from repro.attacks.brute_force import rainbow_attack
from repro.core.stats import BombOrigin
from repro.corpus import build_named_app
from repro.crypto import Salt, encode_value, sha1
from repro.crypto.kdf import hash_constant
from repro.crypto import RSAKeyPair


def test_alpha_sweep(benchmark):
    bundle = build_named_app("Binaural Beat", scale=0.6)
    rows = []

    def run():
        for alpha in (0.0, 0.25, 0.5, 1.0):
            config = BombDroidConfig(
                seed=21, profiling_events=PROFILING_EVENTS, alpha=alpha
            )
            protected, report = BombDroid(config).protect(
                bundle.apk, bundle.developer_key
            )
            rows.append(
                (
                    f"{alpha:.2f}",
                    report.total_injected,
                    report.count_by_origin(BombOrigin.ARTIFICIAL),
                    f"{report.size_increase:+.1%}",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: artificial-QC ratio alpha",
        ["alpha", "total bombs", "artificial", "size increase"],
        rows,
    )
    artificial_counts = [row[2] for row in rows]
    assert artificial_counts == sorted(artificial_counts)
    assert artificial_counts[-1] > artificial_counts[0]


def test_salting_defeats_rainbow_tables(benchmark, protections, named_app_names):
    name = named_app_names[0]
    _, report = protections[name]
    bombs = report.real_bombs()

    def run():
        # The attacker's table is perfect: it contains every actual
        # trigger constant (plus filler) -- hashed WITHOUT the salt.
        table = [bomb.const_value for bomb in bombs] + list(range(512))
        salted = rainbow_attack(bombs, table)
        # Control: the same table against unsalted digests cracks every
        # bomb whose constant it contains.
        unsalted_digests = {sha1(encode_value(v)).hex(): v for v in table}
        unsalted_hits = sum(
            1 for bomb in bombs
            if sha1(encode_value(bomb.const_value)).hex() in unsalted_digests
        )
        return salted, unsalted_hits

    salted, unsalted_hits = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n=== Ablation: salting ({name}) === salted cracks: "
        f"{sum(salted.values())}/{len(salted)}; unsalted would crack: "
        f"{unsalted_hits}/{len(salted)}"
    )
    assert sum(salted.values()) == 0
    assert unsalted_hits == len(salted)


def test_weaving_deletion_corruption(benchmark, attacker_key):
    bundle = build_named_app("CatLog", scale=0.5)
    results = {}

    def run():
        for label, kwargs in (
            ("woven", {"weave": True, "bogus_ratio": 0.2}),
            ("artificial-only", {"alpha": 1.0, "max_bombs_per_method": 0,
                                 "bogus_ratio": 0.0}),
        ):
            config = BombDroidConfig(seed=22, profiling_events=PROFILING_EVENTS, **kwargs)
            protected, _ = BombDroid(config).protect(bundle.apk, bundle.developer_key)
            attack = DeletionAttack(differential_events=400, seed=23)
            outcome = attack.run(protected, attacker_key, original=bundle.apk)
            results[label] = (
                outcome.app_corrupted,
                outcome.details["state_divergences"],
                outcome.details["new_crashes"],
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Ablation: weaving vs deletion === {results}")
    assert results["woven"][0] is True
    assert results["artificial-only"][0] is False
