"""Mesh resilience: multi-pattern tamper response under attack.

The mesh PR's win condition, measured: on a meshed app no
single-pattern strip removes detection without corrupting the app, and
the upgraded multi-pattern (learned) stripper only wins by corrupting
the repackage.  Also guards the mesh's runtime price: the Table 5
overhead delta between meshed and unmeshed protection stays within two
percentage points.

Results land in ``BENCH_mesh_resilience.json`` so the mesh-resilience
CI job can upload them:

``detection_survival_rate``   fraction of seeds where the classic strip
                              left >= 1 armed bomb or corrupted the app
``corruption_on_strip_rate``  fraction of seeds where the learned strip
                              corrupted the repackage
``residual_detection_rate``   fraction of learned-strip repackages that
                              still produced detections or mesh trips
``overhead_delta``            mean meshed-vs-unmeshed protected cost
                              delta over the same event stream
"""

import json

from conftest import PROFILING_EVENTS, SCALE, print_table

from repro import BombDroid, BombDroidConfig, build_named_app, repackage
from repro.attacks import AdaptiveStripperAttack, DeletionAttack
from repro.core.config import DetectionMethod, ResponseKind
from repro.crypto import RSAKeyPair
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator
from repro.vm import DevicePopulation, Runtime

BENCH_OUT = "BENCH_mesh_resilience.json"
MESH_APPS = ("SWJournal", "AndroFish", "Hash Droid")
DIFF_EVENTS = max(300, int(800 * SCALE))
COST_EVENTS = max(600, int(2000 * SCALE))
OVERHEAD_DELTA_BUDGET = 0.02


def _config(mesh: bool) -> BombDroidConfig:
    return BombDroidConfig(
        seed=17,
        profiling_events=PROFILING_EVENTS,
        mesh=mesh,
        detection_methods=(
            DetectionMethod.PUBLIC_KEY,
            DetectionMethod.CODE_DIGEST,
            DetectionMethod.CODE_SCAN,
        ),
    )


def _cost(apk, seed: int) -> int:
    runtime = Runtime(
        apk.dex(),
        device=DevicePopulation(seed=seed).sample(),
        package=apk.install_view(),
        seed=seed,
    )
    try:
        runtime.boot()
    except VMError:
        pass
    for event in DynodroidGenerator(apk.dex(), seed=seed).stream(COST_EVENTS):
        try:
            runtime.dispatch(event)
        except VMError:
            pass
    return runtime.cost_units


def test_mesh_resilience(benchmark):
    attacker = RSAKeyPair.generate(seed=4040)
    rows = []
    survivals = []
    corruptions = []
    residuals = []
    deltas = []

    def run():
        for index, name in enumerate(MESH_APPS):
            bundle = build_named_app(name)
            unmeshed = BombDroid(_config(mesh=False)).protect(
                bundle.apk, bundle.developer_key
            )
            meshed = BombDroid(_config(mesh=True)).protect(
                bundle.apk, bundle.developer_key
            )

            classic = DeletionAttack(
                differential_events=DIFF_EVENTS, seed=30 + index
            ).run(
                repackage(meshed.apk, attacker), attacker, original=bundle.apk
            )
            survived = (
                classic.details["live_sites"] > 0 or classic.app_corrupted
            )
            survivals.append(survived)

            adaptive = AdaptiveStripperAttack(
                differential_events=DIFF_EVENTS, seed=30 + index
            ).run(
                repackage(meshed.apk, attacker), attacker, original=bundle.apk
            )
            corruptions.append(adaptive.app_corrupted)
            residuals.append(
                adaptive.details["residual_detections"] > 0
                or adaptive.details["residual_mesh_trips"] > 0
            )

            cost_plain = _cost(unmeshed.apk, seed=90 + index)
            cost_mesh = _cost(meshed.apk, seed=90 + index)
            delta = (cost_mesh - cost_plain) / cost_plain
            deltas.append(delta)

            rows.append(
                (
                    name,
                    "survived" if survived else "STRIPPED",
                    f"live={classic.details['live_sites']}",
                    "corrupted" if adaptive.app_corrupted else "CLEAN",
                    adaptive.details["residual_detections"]
                    + adaptive.details["residual_mesh_trips"],
                    f"{delta:+.2%}",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Mesh resilience (classic strip / learned strip / overhead delta)",
        ["app", "classic strip", "armed bombs", "learned strip",
         "residual signals", "mesh overhead delta"],
        rows,
    )

    survival_rate = sum(survivals) / len(survivals)
    corruption_rate = sum(corruptions) / len(corruptions)
    residual_rate = sum(residuals) / len(residuals)
    mean_delta = sum(deltas) / len(deltas)
    payload = {
        "apps": list(MESH_APPS),
        "diff_events": DIFF_EVENTS,
        "cost_events": COST_EVENTS,
        "detection_survival_rate": survival_rate,
        "corruption_on_strip_rate": corruption_rate,
        "residual_detection_rate": residual_rate,
        "overhead_delta": round(mean_delta, 5),
        "overhead_delta_per_app": [round(d, 5) for d in deltas],
    }
    with open(BENCH_OUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {BENCH_OUT}: {payload}")

    # Win condition: for every seed, the single-pattern strip either
    # left a live bomb or broke the app.
    assert survival_rate == 1.0
    # The learned stripper disarms everything it can see, but only at
    # the price of a corrupted (unsellable) repackage.
    assert corruption_rate == 1.0
    # Mesh guards cost payload-side work only: the steady-state Table 5
    # overhead moves by at most two percentage points.
    assert abs(mean_delta) <= OVERHEAD_DELTA_BUDGET
