"""Section 8.3.2: human analysts with environment mutation.

Paper: four skilled analysts, 20 hours per app, full knowledge of the
implementation, free to mutate environment variables -- at most 9.3% of
bombs triggered.  "Mutating environment variables values is slightly
helpful", but the space is too large to search blindly.
"""

from conftest import SCALE, print_table

from repro.attacks import HumanAnalystAttack

HOURS = 1.0 * SCALE
SESSION_MINUTES = 10.0 * max(1.0, SCALE)


def test_human_analyst(benchmark, protections, named_app_names):
    rows = []
    fractions = []

    def run():
        for index, name in enumerate(named_app_names[:4]):
            protected, report = protections[name]
            attack = HumanAnalystAttack(
                seed=500 + index,
                total_hours=HOURS,
                session_minutes=SESSION_MINUTES,
            )
            result = attack.run(protected, total_bombs=len(report.real_bombs()))
            fractions.append(result.details["fraction_triggered"])
            rows.append(
                (
                    name,
                    len(report.real_bombs()),
                    result.details["outer_satisfied"],
                    result.details["fully_triggered"],
                    f"{result.details['fraction_triggered']:.1%}",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Section 8.3.2 (analyst with env mutation, {HOURS:.0f}h/app; paper: <=9.3%)",
        ["app", "bombs", "outer satisfied", "fully triggered", "fraction"],
        rows,
    )
    mean = sum(fractions) / len(fractions)
    print(f"mean fraction triggered: {mean:.1%}")
    # Shape: even a knowledgeable analyst mutating the environment
    # leaves the large majority of bombs dormant.
    assert mean <= 0.35
    assert not any(result == 1.0 for result in fractions)
